"""Topology integration: default parity, contention effects, link metrics.

The acceptance contract of the topology layer:

* the default (uniform) topology — and the explicit ``dedicated`` one —
  reproduce the pre-topology golden fixtures byte-identically;
* RunSpec fingerprints are unchanged when ``topology`` is omitted;
* contended topologies change cold-start timings and surface per-link
  utilization in the report, in both metrics modes.
"""

import json

import pytest

from repro.metrics.report import RunReport, merge_run_reports
from repro.registry import TOPOLOGIES, build_cluster
from repro.runner import RunSpec, execute_spec, expand_grid

from tests.golden.generate import GOLDEN_AXES, golden_path

#: a cross-section of the bundles: shared placement, exclusive slots, PD
_PARITY_SYSTEMS = ("slinfer", "sllm+c+s", "pd-sllm")


@pytest.mark.parametrize("system", _PARITY_SYSTEMS)
def test_dedicated_topology_matches_golden_fixture_bytes(system):
    """Dedicated links cannot contend, so every timing (and the whole
    canonical report) matches the pre-topology fixtures exactly."""
    result = execute_spec(RunSpec(system=system, topology="dedicated", **GOLDEN_AXES))
    got = (
        json.dumps(result.canonical_report_dict(), sort_keys=True, separators=(",", ":"))
        + "\n"
    )
    assert got == golden_path(system).read_text(encoding="utf-8")


def test_topology_omitted_keeps_fingerprint_and_payload():
    spec = RunSpec(system="slinfer", **GOLDEN_AXES)
    assert "topology" not in spec.to_dict()
    explicit = RunSpec(system="slinfer", topology="dedicated", **GOLDEN_AXES)
    assert "topology" in explicit.to_dict()
    assert explicit.fingerprint() != spec.fingerprint()
    assert RunSpec.from_dict(explicit.to_dict()) == explicit
    assert RunSpec.from_dict(spec.to_dict()) == spec


def test_expand_grid_topology_axis():
    specs = expand_grid(
        ["slinfer"], clusters=("gpu-only",), topologies=(None, "oversub-nic")
    )
    assert [spec.topology for spec in specs] == [None, "oversub-nic"]
    assert len({spec.fingerprint() for spec in specs}) == 2


def test_registered_topologies_apply_to_any_cluster():
    for name in TOPOLOGIES.names():
        cluster = build_cluster("cpu2-gpu2", topology=name)
        assert cluster.topology.name == name
        # The facade invariant: one node list, shared by both layers.
        assert cluster.topology.nodes is cluster.nodes


def test_oversubscribed_nic_slows_cold_starts_and_records_links():
    axes = dict(GOLDEN_AXES, cluster="gpu-only")
    baseline = execute_spec(RunSpec(system="slinfer", **axes)).report
    contended = execute_spec(
        RunSpec(system="slinfer", topology="oversub-nic", **axes)
    ).report
    # The uniform run must not carry link metrics (golden-compat)...
    assert baseline.link_utilization == {}
    assert "link_utilization" not in baseline.to_dict()
    # ...while the shared-NIC run does, with real traffic on the uplink.
    uplink = contended.link_utilization["rack/nic"]
    assert uplink["bytes"] > 0
    assert uplink["busy_seconds"] > 0
    assert uplink["transfers"] >= contended.cold_starts
    assert contended.link_busy_fraction("rack/nic") > 0
    assert contended.link_bytes_total >= uplink["bytes"]
    # Cold starts behind a 2.5 GiB/s shared NIC take longer than behind
    # dedicated 14 GiB/s loaders: the trajectory must actually change.
    assert baseline.to_dict(include_volatile=False) != contended.to_dict(
        include_volatile=False
    )


def test_link_utilization_round_trips_and_merges():
    axes = dict(GOLDEN_AXES, cluster="gpu-only")
    report = execute_spec(RunSpec(system="slinfer", topology="oversub-nic", **axes)).report
    payload = report.to_dict(include_volatile=False)
    assert payload["link_utilization"] == report.link_utilization
    restored = RunReport.from_dict(payload)
    assert restored.link_utilization == report.link_utilization
    merged = merge_run_reports([report, restored])
    uplink = merged.link_utilization["rack/nic"]
    assert uplink["bytes"] == pytest.approx(2 * report.link_utilization["rack/nic"]["bytes"])
    assert uplink["max_concurrent"] == report.link_utilization["rack/nic"]["max_concurrent"]


def test_streaming_metrics_carry_link_utilization_too():
    axes = dict(GOLDEN_AXES, cluster="gpu-only")
    exact = execute_spec(RunSpec(system="slinfer", topology="oversub-nic", **axes)).report
    streaming = execute_spec(
        RunSpec(system="slinfer", topology="oversub-nic", metrics="streaming", **axes)
    ).report
    assert streaming.link_utilization == exact.link_utilization
    assert "link_utilization" in streaming.to_dict(include_volatile=False)


def test_placement_seam_prefers_idle_inbound_links():
    """With one island's uplink busy loading, the next cold start goes to
    the idle island instead of queuing behind the in-flight load."""
    from repro.core.system import ServingSystem
    from repro.policies.events import InstanceLoaded

    from tests.systems.helpers import tiny_workload

    cluster = build_cluster("cpu0-gpu4", topology="nvlink-islands")
    system = ServingSystem(cluster, policies="sllm")
    placements = []
    system.bus.subscribe(
        InstanceLoaded, lambda e: placements.append(e.instance.node.node_id)
    )
    # m1 arrives while m0's load still occupies island 0's shared uplink.
    system.run(tiny_workload([("m0", 0.0, 128, 4), ("m1", 0.1, 128, 4)], duration=30.0))
    assert placements[0] == "gpu-0"
    assert placements[1] in ("gpu-2", "gpu-3")  # the idle island


def test_slinfer_placement_seam_prefers_idle_inbound_links():
    from repro.core.system import ServingSystem
    from repro.policies.events import InstanceLoaded

    from tests.systems.helpers import tiny_workload

    cluster = build_cluster("cpu0-gpu4", topology="nvlink-islands")
    system = ServingSystem(cluster, policies="slinfer")
    placements = []
    system.bus.subscribe(
        InstanceLoaded, lambda e: placements.append(e.instance.node.node_id)
    )
    system.run(tiny_workload([("m0", 0.0, 128, 4), ("m1", 0.1, 128, 4)], duration=30.0))
    assert len(placements) == 2
    first_island = {"gpu-0", "gpu-1"} if placements[0] in ("gpu-0", "gpu-1") else {"gpu-2", "gpu-3"}
    assert placements[1] not in first_island


def test_sweep_executor_caches_topology_specs_separately(tmp_path):
    from repro.runner import ResultCache, SweepExecutor

    axes = dict(GOLDEN_AXES, cluster="gpu-only")
    specs = [
        RunSpec(system="sllm", **axes),
        RunSpec(system="sllm", topology="oversub-nic", **axes),
    ]
    cache = ResultCache(tmp_path)
    results = SweepExecutor(workers=1, cache=cache).run(specs)
    rerun = SweepExecutor(workers=1, cache=cache).run(specs)
    assert [r.from_cache for r in results] == [False, False]
    assert [r.from_cache for r in rerun] == [True, True]
    assert [r.canonical_json() for r in results] == [r.canonical_json() for r in rerun]
