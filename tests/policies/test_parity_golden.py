"""Golden-report parity: policy bundles vs the pre-redesign subclasses.

The fixtures under ``tests/golden/`` were generated from the
inheritance-based system implementations *before* the policy redesign
(see ``tests/golden/generate.py``).  Each bundle-composed system must
reproduce its pre-redesign canonical report byte-for-byte on the
smoke-scale azure scenario — the redesign is a pure refactoring of the
extension API, not a behaviour change.
"""

import json

import pytest

from repro.registry import SYSTEMS
from repro.runner import RunSpec, execute_spec

from tests.golden.generate import (
    GOLDEN_AXES,
    GOLDEN_SHARED_AXES,
    GOLDEN_SHARED_SYSTEMS,
    golden_path,
    golden_shared_path,
)


@pytest.mark.parametrize("system", SYSTEMS.names())
def test_bundle_reproduces_pre_redesign_report_bytes(system):
    fixture = golden_path(system)
    assert fixture.exists(), f"golden fixture missing for {system!r}; run tests/golden/generate.py"
    result = execute_spec(RunSpec(system=system, **GOLDEN_AXES))
    got = json.dumps(
        result.canonical_report_dict(), sort_keys=True, separators=(",", ":")
    ) + "\n"
    assert got == fixture.read_text(encoding="utf-8")


@pytest.mark.parametrize("system", GOLDEN_SHARED_SYSTEMS)
def test_kv_shared_mode_reproduces_golden_bytes(system):
    """The prefix-sharing block map is deterministic end to end: the
    shared-sysprompt smoke run with kv_sharing on pins its canonical
    report (including the kv_sharing counter block) byte-for-byte."""
    fixture = golden_shared_path(system)
    assert fixture.exists(), f"shared fixture missing for {system!r}; run tests/golden/generate.py"
    result = execute_spec(RunSpec(system=system, **GOLDEN_SHARED_AXES))
    got = json.dumps(
        result.canonical_report_dict(), sort_keys=True, separators=(",", ":")
    ) + "\n"
    assert got == fixture.read_text(encoding="utf-8")
    assert "kv_sharing" in result.canonical_report_dict()


def _shim_factories():
    from repro.baselines import NeoSystem, PdSlinfer, PdSllmSystem, make_sllm_cs
    from repro.core import Slinfer

    return [
        ("slinfer", Slinfer),
        ("sllm+c+s", make_sllm_cs),
        ("neo+", NeoSystem),
        ("pd-sllm", PdSllmSystem),
        ("pd-slinfer", PdSlinfer),
    ]


@pytest.mark.parametrize("system,shim", _shim_factories())
def test_deprecated_shims_match_bundles(system, shim):
    """The one-release compat classes produce the same reports as bundles."""
    from repro.hardware import Cluster
    from repro.runner.spec import build_workload

    spec = RunSpec(system=system, **GOLDEN_AXES)
    workload = build_workload(spec)
    with pytest.deprecated_call():
        shim_report = shim(Cluster.build(2, 2)).run(workload)
    bundle_report = execute_spec(spec, workload=build_workload(spec)).report
    assert shim_report.to_dict(include_volatile=False) == bundle_report.to_dict(
        include_volatile=False
    )
