"""EventBus subscribe/unsubscribe/detach semantics (precomputed chains).

The bus precomputes a flat handler chain per concrete event type (the
MRO walk happens once, not per publish).  These tests pin the visible
contract: hierarchy delivery, delivery order, detach behaviour, and
cache invalidation when the subscriber set changes between publishes.
"""

from repro.policies.events import Event, EventBus


class _Base(Event):
    __slots__ = ("value",)

    def __init__(self, value=0):
        self.value = value


class _Derived(_Base):
    __slots__ = ()


class _Other(Event):
    __slots__ = ()


def test_base_class_subscription_receives_subclass_events():
    bus = EventBus()
    seen = []
    bus.subscribe(_Base, lambda e: seen.append(("base", e.value)))
    bus.subscribe(Event, lambda e: seen.append(("root", getattr(e, "value", None))))
    bus.publish(_Derived(7))
    # Most-derived class first: _Derived has no direct subscribers, then
    # _Base, then Event.
    assert seen == [("base", 7), ("root", 7)]
    seen.clear()
    bus.publish(_Other())
    assert [tag for tag, _ in seen] == ["root"]


def test_delivery_order_is_mro_then_subscription_order():
    bus = EventBus()
    seen = []
    bus.subscribe(Event, lambda e: seen.append("root-1"))
    bus.subscribe(_Derived, lambda e: seen.append("derived-1"))
    bus.subscribe(_Base, lambda e: seen.append("base-1"))
    bus.subscribe(_Derived, lambda e: seen.append("derived-2"))
    bus.publish(_Derived())
    assert seen == ["derived-1", "derived-2", "base-1", "root-1"]


def test_detach_is_idempotent():
    bus = EventBus()
    seen = []
    detach = bus.subscribe(_Base, lambda e: seen.append(e.value))
    detach()
    detach()  # second call is a no-op, not an error
    bus.publish(_Base(1))
    assert seen == []
    assert bus.subscriber_count(_Base) == 0


def test_detach_removes_only_its_own_subscription():
    bus = EventBus()
    seen = []

    def handler(event):
        seen.append(event.value)

    first = bus.subscribe(_Base, handler)
    bus.subscribe(_Base, handler)  # same handler subscribed twice
    assert bus.subscriber_count(_Base) == 2
    first()
    assert bus.subscriber_count(_Base) == 1
    bus.publish(_Base(3))
    assert seen == [3]


def test_subscribe_after_publish_invalidates_the_chain_cache():
    bus = EventBus()
    seen = []
    bus.publish(_Base(1))  # caches the empty chain for _Base
    bus.subscribe(_Base, lambda e: seen.append(e.value))
    bus.publish(_Base(2))
    assert seen == [2]


def test_detach_during_publish_takes_effect_next_publish():
    bus = EventBus()
    seen = []
    detachers = {}

    def self_removing(event):
        seen.append("first")
        detachers["second"]()

    def second(event):
        seen.append("second")

    detachers["first"] = bus.subscribe(_Base, self_removing)
    detachers["second"] = bus.subscribe(_Base, second)
    # The in-flight chain is an immutable snapshot: "second" still runs
    # this publish, and is gone from the next one.
    bus.publish(_Base())
    assert seen == ["first", "second"]
    bus.publish(_Base())
    assert seen == ["first", "second", "first"]


def test_subscribe_during_publish_takes_effect_next_publish():
    bus = EventBus()
    seen = []

    def subscriber(event):
        seen.append("outer")
        if len(seen) == 1:
            bus.subscribe(_Base, lambda e: seen.append("inner"))

    bus.subscribe(_Base, subscriber)
    bus.publish(_Base())
    assert seen == ["outer"]
    bus.publish(_Base())
    assert seen == ["outer", "outer", "inner"]


def test_subscriber_count_is_exact_type_only():
    bus = EventBus()
    bus.subscribe(_Base, lambda e: None)
    bus.subscribe(Event, lambda e: None)
    assert bus.subscriber_count(_Base) == 1
    assert bus.subscriber_count(_Derived) == 0
    assert bus.subscriber_count(Event) == 1
