"""The SLINFER decode-chain quiet guard's inlined KV predicate.

``SlinferPlacement.decode_chain_quiet_steps`` bounds how many decode
iterations the vectorized engine may fast-path before the watermark
handler stops being a no-op.  Its hot predicate is an integer
block-count inlining of the byte comparison the handler itself makes;
this module pins the two forms to each other exactly.
"""

from __future__ import annotations

import random

from repro.engine.kvcache import BLOCK_TOKENS, KVCache
from repro.models import LLAMA2_7B
from repro.policies.slinfer import SlinferPlacement


def _byte_form(kv: KVCache, contexts, steps: int, budget_bytes: int) -> bool:
    """The handler's own comparison: block-rounded bytes vs the budget."""
    return sum(kv.used_bytes(c + steps) for c in contexts) <= budget_bytes


def _block_form(contexts, steps: int, budget_bytes: int, block_bytes: int) -> bool:
    """The inlined predicate from decode_chain_quiet_steps."""
    budget = budget_bytes // block_bytes
    return sum((c + BLOCK_TOKENS - 1 + steps) // BLOCK_TOKENS for c in contexts) <= budget


def test_block_count_predicate_matches_byte_comparison():
    kv = KVCache(model=LLAMA2_7B)
    rng = random.Random(11)
    for _ in range(300):
        batch = rng.randint(1, 12)
        contexts = [rng.randint(1, 4096) for _ in range(batch)]
        steps = rng.randint(0, 512)
        # Budgets straddling the decision boundary, including negative
        # (growth exceeding the plan) and sub-block remainders.
        exact = sum(kv.used_bytes(c + steps) for c in contexts)
        for budget in (
            exact - kv.block_bytes,
            exact - 1,
            exact,
            exact + 1,
            exact + kv.block_bytes - 1,
            exact + kv.block_bytes,
            -1,
            0,
        ):
            assert _byte_form(kv, contexts, steps, budget) == _block_form(
                contexts, steps, budget, kv.block_bytes
            ), (contexts, steps, budget)


def test_quietness_is_monotone_in_steps():
    # decode_chain_quiet_steps binary-searches on this monotonicity.
    kv = KVCache(model=LLAMA2_7B)
    contexts = [100, 250, 777]
    budget = sum(kv.used_bytes(c + 40) for c in contexts)
    results = [_block_form(contexts, s, budget, kv.block_bytes) for s in range(0, 200)]
    assert results[0] is True
    assert results == sorted(results, reverse=True)


def test_after_iteration_declares_the_guard():
    assert SlinferPlacement._after_iteration._chain_guard == "decode_chain_quiet_steps"
