"""O(1) admission-queue bookkeeping: tombstones, liveness, compaction."""

from repro.core import ServingSystem
from repro.engine.request import Request, RequestState
from repro.hardware import Cluster

from tests.systems.helpers import tiny_workload


def _request(i: int, deployment: str = "m0") -> Request:
    return Request(
        req_id=i,
        deployment=deployment,
        arrival=0.0,
        input_len=128,
        output_len=8,
        ttft_slo=10.0,
        tpot_slo=0.2,
    )


def _fresh_system() -> ServingSystem:
    return ServingSystem(Cluster.build(0, 1), policies="sllm")


def test_queue_is_fifo_and_dequeue_is_tombstoned():
    system = _fresh_system()
    requests = [_request(i) for i in range(20)]
    for request in requests:
        system.enqueue(request)
    assert system.queued_requests() == requests
    # Retiring entries (drop or successful retry) is O(1): the deque
    # keeps tombstones, only the liveness map shrinks.
    for request in requests[:15]:
        system._dequeue(request)
    assert system.queued_requests() == requests[15:]
    assert len(system.queue) == 20  # tombstones still present


def test_compaction_sweeps_tombstones_preserving_order():
    system = _fresh_system()
    requests = [_request(i) for i in range(20)]
    for request in requests:
        system.enqueue(request)
    for request in requests[:15]:
        system._dequeue(request)
    system._compact_queue()
    assert len(system.queue) == 5
    assert system.queued_requests() == requests[15:]


def test_reenqueue_moves_request_to_the_back():
    system = _fresh_system()
    requests = [_request(i) for i in range(4)]
    for request in requests:
        system.enqueue(request)
    # A request that leaves the queue (placed, then e.g. evicted) and
    # re-enters queues at the back; its stale entry must not resurrect
    # its old position.
    system._dequeue(requests[0])
    system.enqueue(requests[0])
    assert system.queued_requests() == requests[1:] + [requests[0]]


def test_overload_run_leaves_no_live_queue_state():
    arrivals = [(f"m{i}", 1.0 + 0.01 * i, 2048, 200) for i in range(12)]
    system = _fresh_system()
    report = system.run(tiny_workload(arrivals, duration=240.0))
    assert report.dropped_count > 0
    assert system.queued_requests() == []
    assert system._queued == {}
    assert len(system.queue) <= 8  # compaction bounds leftover tombstones
    for request in report.requests:
        assert request.state in (RequestState.COMPLETED, RequestState.DROPPED)
