"""Policy registries, spec parsing, and bundle overrides."""

import pytest

from repro.core import ServingSystem
from repro.hardware import Cluster
from repro.policies import (
    BUNDLES,
    KeepAliveReclaim,
    NeverReclaim,
    POLICY_KINDS,
    PolicyBundle,
    RECLAIM_POLICIES,
    SllmPlacement,
    build_bundle,
    resolve_policy,
)
from repro.registries import RegistryError

from tests.systems.helpers import steady_stream, tiny_workload


def test_resolve_policy_by_name():
    policy = resolve_policy("reclaim", "never")
    assert isinstance(policy, NeverReclaim)
    assert policy.spec == "never"


def test_resolve_policy_with_argument():
    policy = resolve_policy("reclaim", "keepalive:5")
    assert isinstance(policy, KeepAliveReclaim)
    assert policy.seconds == 5.0


def test_resolve_policy_unknown_kind_and_name():
    with pytest.raises(RegistryError):
        resolve_policy("flavor", "vanilla")
    with pytest.raises(RegistryError):
        resolve_policy("placement", "no-such-placement")
    with pytest.raises(RegistryError):
        resolve_policy("reclaim", "keepalive:not-a-number")


def test_every_bundle_covers_every_kind():
    for name in BUNDLES.names():
        description = BUNDLES.get(name)().describe()
        assert set(description) == set(POLICY_KINDS)


def test_apply_overrides_replaces_and_labels():
    bundle = build_bundle("slinfer", overrides={"reclaim": "never"})
    assert isinstance(bundle.reclaim, NeverReclaim)
    assert bundle.name == "slinfer[reclaim=never]"
    # Untouched kinds keep the stock policies.
    assert bundle.describe()["placement"] == "slinfer"


def test_override_cross_bundle_placement():
    bundle = build_bundle("slinfer", overrides={"placement": "sllm+c"})
    assert isinstance(bundle.placement, SllmPlacement)
    assert bundle.placement.use_cpu is True


def test_with_policies_rejects_unknown_kind():
    bundle = build_bundle("sllm")
    with pytest.raises(KeyError):
        bundle.with_policies(admision=NeverReclaim())  # typo'd kind


def test_duplicate_policy_registration_is_an_error():
    with pytest.raises(RegistryError):
        RECLAIM_POLICIES.register("never", NeverReclaim)


def test_never_reclaim_keeps_instances_loaded():
    # Same trickle workload: stock keep-alive tears the instance down,
    # `never` keeps it resident, so busy node-seconds grow.
    workload = tiny_workload([("m0", 1.0, 256, 5)], duration=60.0)
    stock = ServingSystem(Cluster.build(0, 1), policies="sllm").run(workload)
    kept = ServingSystem(
        Cluster.build(0, 1), policies=build_bundle("sllm", overrides={"reclaim": "never"})
    ).run(tiny_workload([("m0", 1.0, 256, 5)], duration=60.0))
    assert stock.node_seconds_gpu < 20.0
    assert kept.node_seconds_gpu > stock.node_seconds_gpu
    assert kept.slo_met_count == stock.slo_met_count == 1


def test_keepalive_argument_controls_reclaim_horizon():
    def run(spec: str):
        workload = tiny_workload([("m0", 1.0, 256, 5)], duration=120.0)
        bundle = build_bundle("sllm", overrides={"reclaim": spec})
        return ServingSystem(Cluster.build(0, 1), policies=bundle).run(workload)

    short = run("keepalive:0.1")
    long = run("keepalive:30")
    assert short.node_seconds_gpu < long.node_seconds_gpu


def test_custom_placement_policy_composes_without_registration():
    """The worked README example: a custom policy in a hand-built bundle."""
    from repro.policies import PlacementPolicy

    class FirstGpuOnly(PlacementPolicy):
        """Degenerate placement: everything on one exclusive GPU slot."""

        def prepare(self, system, workload):
            self.inner = SllmPlacement()
            self.inner.prepare(system, workload)
            first_gpu = system.cluster.gpu_nodes[0].node_id
            for node_id in self.inner._free_fraction:
                if node_id != first_gpu:
                    self.inner._free_fraction[node_id] = 0.0

        def try_place(self, system, request):
            return self.inner.try_place(system, request)

        def unload(self, system, instance):
            self.inner.unload(system, instance)

    bundle = PolicyBundle(name="first-gpu", placement=FirstGpuOnly())
    system = ServingSystem(Cluster.build(2, 2), policies=bundle)
    report = system.run(tiny_workload(steady_stream(count=4)))
    assert report.system == "first-gpu"
    assert len({i.node.node_id for e in system.executors for i in e.instances}) <= 1


def test_unknown_bundle_is_an_error():
    with pytest.raises(RegistryError):
        build_bundle("no-such-bundle")
