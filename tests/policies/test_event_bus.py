"""The typed event bus: dispatch semantics and core-loop publications."""

import pytest

from repro.core import ServingSystem
from repro.hardware import Cluster
from repro.policies import (
    EventBus,
    InstanceLoaded,
    InstanceUnloaded,
    IterationFinished,
    RequestArrived,
    RequestCompleted,
    RequestDropped,
    RequestQueued,
)
from repro.policies.events import Event, OverheadMeasured

from tests.systems.helpers import steady_stream, tiny_workload


class _Ping(Event):
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class _Pong(Event):
    __slots__ = ()


def test_exact_type_dispatch_in_subscription_order():
    bus = EventBus()
    seen = []
    bus.subscribe(_Ping, lambda e: seen.append(("a", e.value)))
    bus.subscribe(_Ping, lambda e: seen.append(("b", e.value)))
    bus.subscribe(_Pong, lambda e: seen.append("pong"))
    bus.publish(_Ping(1))
    assert seen == [("a", 1), ("b", 1)]
    bus.publish(_Pong())
    assert seen[-1] == "pong"


def test_detach_stops_delivery():
    bus = EventBus()
    seen = []
    detach = bus.subscribe(_Ping, lambda e: seen.append(e.value))
    bus.publish(_Ping(1))
    detach()
    bus.publish(_Ping(2))
    assert seen == [1]
    assert bus.subscriber_count(_Ping) == 0


def test_subscribe_rejects_non_event_types():
    with pytest.raises(TypeError):
        EventBus().subscribe(int, lambda e: None)


def test_core_loop_publishes_request_lifecycle_events():
    # Overloaded single GPU: some requests queue and drop, the rest
    # complete — every lifecycle event must fire consistently.
    arrivals = []
    for m in range(3):
        arrivals += [(f"m{m}", 1.0, 2048, 300)] * 3
    workload = tiny_workload(arrivals)
    system = ServingSystem(Cluster.build(0, 1), policies="sllm")
    counts = {
        cls: 0
        for cls in (
            RequestArrived,
            RequestQueued,
            RequestDropped,
            RequestCompleted,
            InstanceLoaded,
            InstanceUnloaded,
            IterationFinished,
        )
    }
    for cls in counts:
        system.bus.subscribe(cls, lambda e, c=cls: counts.__setitem__(c, counts[c] + 1))
    report = system.run(workload)
    assert counts[RequestArrived] == report.total_requests == 9
    assert counts[RequestDropped] == report.dropped_count > 0
    assert counts[RequestCompleted] == len(report.completed)
    assert counts[RequestCompleted] + counts[RequestDropped] == counts[RequestArrived]
    assert counts[RequestQueued] >= counts[RequestDropped]
    assert counts[InstanceLoaded] == report.cold_starts > 0
    assert counts[InstanceUnloaded] == counts[InstanceLoaded]  # all reclaimed
    assert counts[IterationFinished] > 0


def test_overhead_measurement_flows_through_bus():
    workload = tiny_workload(steady_stream(count=3))
    system = ServingSystem(Cluster.build(0, 1), policies="sllm")
    samples = []
    system.bus.subscribe(OverheadMeasured, lambda e: samples.append(e.name))
    report = system.run(workload)
    assert "placement" in samples and "token_schedule" in samples
    assert set(report.overhead_stats) == set(samples)


def test_observers_are_detachable_without_changing_trajectory():
    # Metrics are pure observers: removing them must not change the
    # simulated trajectory (event count is a full-trajectory digest).
    # sample_interval=0 disables the periodic sampler so both runs
    # schedule the exact same simulator events.
    from repro.core import SlinferConfig

    config = SlinferConfig(sample_interval=0.0)
    arrivals = steady_stream(count=6) + steady_stream("m1", count=6)
    observed = ServingSystem(Cluster.build(1, 1), policies="slinfer", config=config)
    observed.run(tiny_workload(arrivals))
    bare = ServingSystem(
        Cluster.build(1, 1), policies="slinfer", config=config, observers=[]
    )
    bare.run(tiny_workload(arrivals))
    assert bare.sim.events_processed == observed.sim.events_processed
    assert bare.metrics.requests == []  # nothing recorded without observers
