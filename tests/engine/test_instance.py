"""Tests for the model-instance lifecycle container."""

import pytest

from repro.engine.instance import Instance, InstanceState
from repro.engine.request import Request
from repro.hardware import A100_80GB
from repro.hardware.node import Node
from repro.models import LLAMA2_7B


def make_instance(**overrides):
    defaults = dict(
        inst_id=0,
        deployment="llama#000",
        model=LLAMA2_7B,
        node=Node("gpu-0", A100_80GB),
    )
    defaults.update(overrides)
    return Instance(**defaults)


def make_request(req_id=0, input_len=128, output_len=8, arrival=0.0):
    return Request(
        req_id=req_id,
        deployment="llama#000",
        arrival=arrival,
        input_len=input_len,
        output_len=output_len,
        ttft_slo=1.0,
        tpot_slo=0.25,
    )


def test_new_instance_is_loading_with_empty_batch():
    instance = make_instance()
    assert instance.state is InstanceState.LOADING
    assert instance.batch_size == 0
    assert not instance.has_work


def test_enqueue_then_admit_flow():
    instance = make_instance()
    instance.state = InstanceState.ACTIVE
    request = make_request()
    instance.enqueue(request)
    assert instance.next_prefill() is request
    assert instance.request_count == 1
    instance.prefill_pending.remove(request)
    instance.admit_to_batch(request)
    assert instance.batch_size == 1
    assert instance.next_prefill() is None


def test_has_work_requires_active_state():
    instance = make_instance()
    instance.enqueue(make_request())
    assert not instance.has_work  # still LOADING
    instance.state = InstanceState.ACTIVE
    assert instance.has_work


def test_min_headroom_over_all_requests():
    instance = make_instance()
    instance.state = InstanceState.ACTIVE
    early = make_request(req_id=1, arrival=0.0)
    late = make_request(req_id=2, arrival=5.0)
    instance.admit_to_batch(early)
    instance.enqueue(late)
    assert instance.min_headroom(6.0) == early.headroom(6.0)
    assert instance.min_headroom(6.0) < late.headroom(6.0)


def test_min_headroom_empty_is_infinite():
    instance = make_instance()
    assert instance.min_headroom(0.0) == float("inf")


def test_avg_context_len_counts_decode_batch_only():
    instance = make_instance()
    a = make_request(req_id=1, input_len=100)
    b = make_request(req_id=2, input_len=300)
    instance.admit_to_batch(a)
    instance.admit_to_batch(b)
    assert instance.avg_context_len() == pytest.approx(200.0)


def test_live_kv_bytes_rounds_per_request():
    instance = make_instance()
    request = make_request(input_len=1)  # 1 token → 1 block
    instance.admit_to_batch(request)
    assert instance.live_kv_bytes() == instance.kv.block_bytes


def test_remove_unknown_request_raises():
    instance = make_instance()
    with pytest.raises(ValueError):
        instance.remove(make_request())


def test_weights_split_across_tp_nodes():
    instance = make_instance(tp_degree=2)
    assert instance.weight_bytes_per_node == LLAMA2_7B.weight_bytes // 2


def test_idle_definition():
    instance = make_instance()
    instance.state = InstanceState.ACTIVE
    assert instance.idle
    instance.enqueue(make_request())
    assert not instance.idle
