"""Tests for the paged KV-cache and the Fig. 17 scaling-cost model."""

import pytest

from repro.engine.kvcache import BLOCK_TOKENS, KVCache
from repro.models import LLAMA2_7B
from repro.perf import kv_scaling_seconds

GIB = 1024**3


@pytest.fixture
def cache():
    return KVCache(model=LLAMA2_7B)


def test_block_bytes(cache):
    assert cache.block_bytes == BLOCK_TOKENS * LLAMA2_7B.kv_bytes_per_token


def test_round_to_blocks(cache):
    assert cache.round_to_blocks(0) == 0
    assert cache.round_to_blocks(1) == cache.block_bytes
    assert cache.round_to_blocks(cache.block_bytes) == cache.block_bytes
    assert cache.round_to_blocks(cache.block_bytes + 1) == 2 * cache.block_bytes


def test_round_to_blocks_handles_float_sizes(cache):
    # Fractional byte counts (utilization-scaled targets) must round *up*;
    # plain // on a float used to truncate a hair below a block boundary.
    assert cache.round_to_blocks(0.5) == cache.block_bytes
    assert cache.round_to_blocks(cache.block_bytes + 0.5) == 2 * cache.block_bytes
    assert cache.round_to_blocks(float(cache.block_bytes)) == cache.block_bytes
    assert cache.round_to_blocks(cache.block_bytes - 0.25) == cache.block_bytes


def test_used_bytes_rounds_per_request(cache):
    one_token = cache.used_bytes(1)
    assert one_token == cache.block_bytes
    assert cache.used_bytes(BLOCK_TOKENS * 3) == 3 * cache.block_bytes


def test_scaling_lifecycle(cache):
    cache.allocated_bytes = 2 * GIB
    duration = cache.begin_scale(4 * GIB, live_bytes=1 * GIB)
    assert duration > 0
    assert cache.scaling
    assert cache.committed_bytes == pytest.approx(4 * GIB, rel=0.01)
    cache.finish_scale()
    assert not cache.scaling
    assert cache.allocated_bytes == cache.round_to_blocks(4 * GIB)


def test_concurrent_scaling_rejected(cache):
    cache.begin_scale(1 * GIB, 0)
    with pytest.raises(RuntimeError):
        cache.begin_scale(2 * GIB, 0)


def test_finish_without_begin_rejected(cache):
    with pytest.raises(RuntimeError):
        cache.finish_scale()


def test_zero_delta_scale_is_a_no_op(cache):
    # Re-targeting the current size must not enter the scaling state (a
    # zero-second "resize" would still briefly stall admission).
    cache.allocated_bytes = 2 * GIB
    target = cache.round_to_blocks(2 * GIB)
    assert cache.begin_scale(target, live_bytes=1 * GIB) == 0.0
    assert not cache.scaling
    assert cache.allocated_bytes == target
    # And a real scale can still start afterwards.
    assert cache.begin_scale(4 * GIB, live_bytes=1 * GIB) > 0
    assert cache.scaling


# ----------------------------------------------------------------------
# Fig. 17 calibration: half-full 32 GB cache → 16 GB ≈ 0.3 s, → 64 GB ≈ 1.9 s
# ----------------------------------------------------------------------
def test_scale_down_cost_matches_fig17():
    assert kv_scaling_seconds(32 * GIB, 16 * GIB, 16 * GIB) == pytest.approx(0.3, abs=0.05)


def test_scale_up_cost_matches_fig17():
    assert kv_scaling_seconds(32 * GIB, 64 * GIB, 16 * GIB) == pytest.approx(1.9, abs=0.15)


def test_scale_up_costs_more_than_scale_down():
    # Fig. 17: doubling is much more expensive than halving at every size.
    for size_gib in (2, 4, 8, 16, 32):
        size = size_gib * GIB
        up = kv_scaling_seconds(size, 2 * size, size // 2)
        down = kv_scaling_seconds(size, size // 2, size // 2)
        assert up > down


def test_scaling_cost_grows_with_size():
    costs = [
        kv_scaling_seconds(s * GIB, 2 * s * GIB, s * GIB // 2) for s in (2, 4, 8, 16, 32)
    ]
    assert costs == sorted(costs)


def test_negative_sizes_rejected():
    with pytest.raises(ValueError):
        kv_scaling_seconds(-1, 0, 0)
