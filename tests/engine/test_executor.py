"""Tests for the executor container."""

from repro.engine.executor import Executor
from repro.engine.instance import Instance, InstanceState
from repro.hardware import A100_80GB, XEON_GEN4_32C
from repro.hardware.node import Node
from repro.models import LLAMA2_7B


def make_executor(kind="gpu"):
    spec = A100_80GB if kind == "gpu" else XEON_GEN4_32C
    return Executor(exec_id=f"x-{kind}-0", node=Node(f"{kind}-0", spec))


def make_instance(inst_id=0, state=InstanceState.ACTIVE):
    node = Node("gpu-0", A100_80GB)
    instance = Instance(inst_id=inst_id, deployment="d", model=LLAMA2_7B, node=node)
    instance.state = state
    return instance


def test_add_remove_instances():
    executor = make_executor()
    instance = make_instance()
    executor.add_instance(instance)
    assert instance in executor.instances
    executor.remove_instance(instance)
    assert instance not in executor.instances


def test_active_excludes_unloaded():
    executor = make_executor()
    live = make_instance(0, InstanceState.ACTIVE)
    loading = make_instance(1, InstanceState.LOADING)
    dead = make_instance(2, InstanceState.UNLOADED)
    for instance in (live, loading, dead):
        executor.add_instance(instance)
    active = executor.active_instances()
    assert live in active and loading in active and dead not in active


def test_runnable_requires_active_with_work():
    from repro.engine.request import Request

    executor = make_executor()
    instance = make_instance()
    executor.add_instance(instance)
    assert executor.runnable_instances() == []
    instance.enqueue(
        Request(
            req_id=0, deployment="d", arrival=0.0, input_len=8, output_len=2,
            ttft_slo=1.0, tpot_slo=0.25,
        )
    )
    assert executor.runnable_instances() == [instance]


def test_kind_flags_and_identity():
    gpu = make_executor("gpu")
    cpu = make_executor("cpu")
    assert gpu.is_gpu and not gpu.is_cpu
    assert cpu.is_cpu and not cpu.is_gpu
    assert gpu != cpu  # identity is the executor id
    assert gpu == Executor(exec_id="x-gpu-0", node=gpu.node)
