"""Tests for request lifecycle and Eq. 1 headroom accounting."""

import pytest

from repro.engine.request import Request, RequestState


def make_request(**overrides):
    defaults = dict(
        req_id=1,
        deployment="m",
        arrival=10.0,
        input_len=512,
        output_len=4,
        ttft_slo=1.0,
        tpot_slo=0.25,
    )
    defaults.update(overrides)
    return Request(**defaults)


def test_headroom_formula_matches_eq1():
    request = make_request()
    # headroom = ST + TTFT_SLO + TPOT_SLO · O − CT
    assert request.headroom(10.5) == pytest.approx(10.0 + 1.0 + 0.0 - 10.5)
    request.record_tokens(10.8)
    assert request.tokens_out == 1
    assert request.headroom(11.0) == pytest.approx(10.0 + 1.0 + 0.25 - 11.0)


def test_grace_extends_deadline():
    request = make_request(output_len=2)
    request.grace = 0.9
    request.record_tokens(11.8)  # 10 + 1.0 + 0.9 = 11.9 deadline → fine
    assert request.violation_at is None


def test_first_token_past_deadline_is_violation():
    request = make_request()
    request.record_tokens(11.5)  # deadline was 11.0
    assert request.violation_at == pytest.approx(11.5)


def test_decode_pace_violation_detected():
    request = make_request(output_len=3)
    request.record_tokens(10.9)  # ok (TTFT)
    request.record_tokens(11.1)  # deadline 11.25 → ok
    request.record_tokens(11.6)  # deadline 11.5 → violation
    assert request.violation_at == pytest.approx(11.6)


def test_slo_met_requires_completion_and_no_violation():
    request = make_request(output_len=2)
    request.record_tokens(10.7)
    assert not request.slo_met  # not completed yet
    request.record_tokens(10.9)
    request.complete(10.9)
    assert request.slo_met


def test_dropped_request_not_slo_met():
    request = make_request()
    request.drop(11.0)
    assert request.state is RequestState.DROPPED
    assert not request.slo_met


def test_ttft_property():
    request = make_request()
    assert request.ttft is None
    request.record_tokens(10.6)
    assert request.ttft == pytest.approx(0.6)


def test_context_and_remaining_track_progress():
    request = make_request(input_len=100, output_len=5)
    assert request.context_len == 100
    assert request.remaining_tokens == 5
    request.record_tokens(10.5, count=3)
    assert request.context_len == 103
    assert request.remaining_tokens == 2
    assert not request.done


def test_migration_resets_prefill_to_full_context():
    request = make_request(input_len=100, output_len=10)
    request.record_tokens(10.5, count=4)
    request.begin_migration()
    assert request.state is RequestState.MIGRATING
    assert request.prefill_len == 104
    assert request.migrations == 1


def test_invalid_lengths_rejected():
    with pytest.raises(ValueError):
        make_request(input_len=0)
    with pytest.raises(ValueError):
        make_request(output_len=0)
    request = make_request()
    with pytest.raises(ValueError):
        request.record_tokens(11.0, count=0)
