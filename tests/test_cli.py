"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_calibration_command(capsys):
    assert main(["calibration"]) == 0
    out = capsys.readouterr().out
    assert "xeon-6462c-32c" in out
    assert "G-7B-2K" in out


def test_compare_command_small(capsys):
    code = main(
        [
            "compare",
            "--models", "4",
            "--duration", "90",
            "--cpus", "1",
            "--gpus", "1",
            "--systems", "sllm,slinfer",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "sllm" in out and "slinfer" in out


def test_compare_prints_wall_clock_timing(capsys):
    assert main(
        [
            "compare",
            "--models", "2",
            "--duration", "60",
            "--cpus", "1",
            "--gpus", "1",
            "--systems", "sllm",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "wall=" in out and "ev/s" in out


def test_list_command_shows_registries(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for expected in ("slinfer", "sllm+c+s", "bursty-spike", "diurnal", "mixed-fleet", "paper"):
        assert expected in out


def test_sweep_command_parallel_matches_sequential(tmp_path, capsys):
    common = [
        "sweep",
        "--systems", "sllm,slinfer",
        "--seeds", "1,2",
        "--models", "2",
        "--duration", "60",
        "--no-cache",
    ]
    assert main(common + ["--workers", "4", "--out", str(tmp_path / "par")]) == 0
    assert main(common + ["--workers", "1", "--out", str(tmp_path / "seq")]) == 0
    par = sorted((tmp_path / "par").iterdir())
    seq = sorted((tmp_path / "seq").iterdir())
    assert [p.name for p in par] == [s.name for s in seq] and len(par) == 4
    for a, b in zip(par, seq):
        assert a.read_bytes() == b.read_bytes()
    out = capsys.readouterr().out
    assert "4 spec(s)" in out


def test_sweep_command_uses_cache(tmp_path, capsys):
    args = [
        "sweep",
        "--systems", "sllm",
        "--models", "2",
        "--duration", "60",
        "--cache-dir", str(tmp_path / "cache"),
    ]
    assert main(args) == 0
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "1 from cache" in out


def test_sweep_streaming_metrics_mode(tmp_path, capsys):
    args = [
        "sweep",
        "--systems", "sllm",
        "--models", "2",
        "--duration", "60",
        "--metrics", "streaming",
        "--no-cache",
        "--out", str(tmp_path / "out"),
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "metrics=streaming" in out
    written = list((tmp_path / "out").iterdir())
    assert len(written) == 1
    payload = json.loads(written[0].read_text(encoding="utf-8"))
    assert payload["spec"]["metrics"] == "streaming"
    assert payload["report"]["metrics_mode"] == "streaming"
    assert payload["report"]["requests"] == []


def test_sweep_rejects_unknown_metrics_mode():
    with pytest.raises(SystemExit):
        main(["sweep", "--metrics", "sketchy"])


def test_list_policies_shows_kinds_and_bundles(capsys):
    assert main(["list", "policies"]) == 0
    out = capsys.readouterr().out
    for expected in ("placement:", "reclaim:", "admission:", "work:", "bundles"):
        assert expected in out
    assert "placement=slinfer" in out
    assert "systems:" not in out  # scoped listing


def test_sweep_policy_cross_product(capsys):
    code = main(
        [
            "sweep",
            "--systems", "slinfer",
            "--models", "2",
            "--duration", "60",
            "--no-cache",
            "--policy", "placement=slinfer,sllm+c",
            "--policy", "reclaim=keepalive,never",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "4 spec(s)" in out
    assert "slinfer[placement=sllm+c,reclaim=never]" in out


def test_sweep_rejects_unknown_policy(capsys):
    assert main(["sweep", "--policy", "reclaim=no-such"]) == 2
    assert "unknown reclaim policy" in capsys.readouterr().err
    assert main(["sweep", "--policy", "badflag"]) == 2


def test_list_hardware_shows_specs_and_topologies(capsys):
    assert main(["list", "hardware"]) == 0
    out = capsys.readouterr().out
    for expected in ("hardware specs:", "a100-80gb", "v100-32gb", "no-AMX", "topologies"):
        assert expected in out
    for topology in ("uniform", "dedicated", "oversub-nic", "nvlink-islands"):
        assert topology in out
    assert "systems:" not in out  # scoped listing


def test_sweep_topology_axis(tmp_path, capsys):
    args = [
        "sweep",
        "--systems", "sllm",
        "--models", "2",
        "--duration", "60",
        "--clusters", "cpu0-gpu2",
        "--topology", "oversub-nic",
        "--no-cache",
        "--out", str(tmp_path / "out"),
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "cpu0-gpu2/oversub-nic" in out
    written = list((tmp_path / "out").iterdir())
    assert len(written) == 1
    payload = json.loads(written[0].read_text(encoding="utf-8"))
    assert payload["spec"]["topology"] == "oversub-nic"
    assert "link_utilization" in payload["report"]


def test_sweep_rejects_unknown_topology(capsys):
    assert main(["sweep", "--topology", "no-such"]) == 2
    assert "unknown topology" in capsys.readouterr().err


def test_list_json_output(capsys):
    assert main(["list", "scenarios", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "azure" in payload["names"]
    assert any(p["form"] == "prefix-mix{P}" for p in payload["patterns"])


def test_list_json_all_covers_every_kind(capsys):
    assert main(["list", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {
        "systems", "scenarios", "kv-sharing", "engines",
        "clusters", "models", "hardware", "policies", "federations",
    }
    assert "wan4" in payload["federations"]["names"]
    assert "slinfer" in payload["systems"]
    assert payload["policies"]["bundles"]["slinfer"]["placement"] == "slinfer"


def test_list_singular_aliases(capsys):
    assert main(["list", "system"]) == 0
    singular = capsys.readouterr().out
    assert main(["list", "systems"]) == 0
    assert singular == capsys.readouterr().out


def test_list_unknown_kind_is_a_typed_usage_error(capsys):
    assert main(["list", "gadgets"]) == 2
    err = capsys.readouterr().err
    assert "unknown list kind 'gadgets'" in err
    assert "scenarios" in err  # the error names the valid kinds


def test_serve_parser_defaults():
    args = build_parser().parse_args(["serve"])
    assert args.system == "slinfer" and args.scenario == "azure"
    assert args.mode == "shadow" and args.port == 0 and args.pace_ratio == 1.0


def test_serve_rejects_multiple_policies_per_kind(capsys):
    assert main(["serve", "--policy", "reclaim=keepalive,never"]) == 2
    assert "one policy per kind" in capsys.readouterr().err


def test_serve_rejects_unknown_system(capsys):
    assert main(["serve", "--system", "no-such"]) == 2
    assert "unknown system" in capsys.readouterr().err


def test_parser_rejects_unknown_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["experiment", "nope"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
