"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_calibration_command(capsys):
    assert main(["calibration"]) == 0
    out = capsys.readouterr().out
    assert "xeon-6462c-32c" in out
    assert "G-7B-2K" in out


def test_compare_command_small(capsys):
    code = main(
        [
            "compare",
            "--models", "4",
            "--duration", "90",
            "--cpus", "1",
            "--gpus", "1",
            "--systems", "sllm,slinfer",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "sllm" in out and "slinfer" in out


def test_parser_rejects_unknown_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["experiment", "nope"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
