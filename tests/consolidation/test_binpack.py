"""Tests for reactive consolidation orderings (§VIII-B)."""

from repro.consolidation import order_dispatch_candidates, order_nodes_best_fit
from repro.engine.instance import Instance
from repro.engine.request import Request
from repro.hardware import A100_80GB, XEON_GEN4_32C
from repro.hardware.node import Node
from repro.models import LLAMA2_7B

GIB = 1024**3


def make_instance(inst_id, node, batch=0):
    instance = Instance(inst_id=inst_id, deployment="d", model=LLAMA2_7B, node=node)
    for i in range(batch):
        instance.admit_to_batch(
            Request(
                req_id=inst_id * 100 + i,
                deployment="d",
                arrival=0.0,
                input_len=10,
                output_len=10,
                ttft_slo=1.0,
                tpot_slo=0.25,
            )
        )
    return instance


def test_largest_batch_first_within_kind():
    gpu = Node("gpu-0", A100_80GB)
    instances = [make_instance(i, gpu, batch=b) for i, b in enumerate((2, 5, 1))]
    ordered = order_dispatch_candidates(instances)
    assert [i.batch_size for i in ordered] == [5, 2, 1]


def test_cpu_instances_come_first():
    cpu = Node("cpu-0", XEON_GEN4_32C)
    gpu = Node("gpu-0", A100_80GB)
    big_gpu = make_instance(0, gpu, batch=9)
    small_cpu = make_instance(1, cpu, batch=1)
    ordered = order_dispatch_candidates([big_gpu, small_cpu])
    assert ordered[0] is small_cpu


def test_cpu_preference_can_be_disabled():
    cpu = Node("cpu-0", XEON_GEN4_32C)
    gpu = Node("gpu-0", A100_80GB)
    big_gpu = make_instance(0, gpu, batch=9)
    small_cpu = make_instance(1, cpu, batch=1)
    ordered = order_dispatch_candidates([big_gpu, small_cpu], prefer_cpu=False)
    assert ordered[0] is big_gpu


def test_bin_packing_disabled_uses_creation_order():
    gpu = Node("gpu-0", A100_80GB)
    a = make_instance(0, gpu, batch=1)
    b = make_instance(1, gpu, batch=7)
    a.created_at, b.created_at = 1.0, 2.0
    ordered = order_dispatch_candidates([b, a], bin_packing=False)
    assert ordered == [a, b]


def test_best_fit_prefers_tightest_node():
    nodes = [Node(f"gpu-{i}", A100_80GB) for i in range(3)]
    free = {"gpu-0": 50 * GIB, "gpu-1": 20 * GIB, "gpu-2": 35 * GIB}
    ordered = order_nodes_best_fit(
        nodes, free_bytes=lambda n: free[n.node_id], required_bytes=16 * GIB,
        prefer_cpu=False,
    )
    assert [n.node_id for n in ordered] == ["gpu-1", "gpu-2", "gpu-0"]


def test_best_fit_filters_nodes_that_cannot_fit():
    nodes = [Node(f"gpu-{i}", A100_80GB) for i in range(2)]
    free = {"gpu-0": 10 * GIB, "gpu-1": 30 * GIB}
    ordered = order_nodes_best_fit(
        nodes, free_bytes=lambda n: free[n.node_id], required_bytes=16 * GIB
    )
    assert [n.node_id for n in ordered] == ["gpu-1"]
