"""Tests for proactive preemption (§VIII-A), at the Slinfer-integration level."""

from repro.core import Slinfer, SlinferConfig
from repro.engine.instance import InstanceState
from repro.hardware import Cluster

from tests.systems.helpers import tiny_workload


def _gpu_only(**overrides):
    defaults = dict(enable_cpu=False)
    defaults.update(overrides)
    return SlinferConfig(**defaults)


def test_preemption_counter_increments_under_contention():
    # One GPU node, one hot model growing + several small neighbours: the
    # hot model's instance should eventually grow by preempting a fragment.
    arrivals = []
    # Small neighbours first (batch 1 each).
    for m in range(3):
        arrivals.append((f"cold{m}", 0.5 + 0.1 * m, 1024, 400))
    # Then a hot model ramps up on the same node.
    for i in range(24):
        arrivals.append(("hot", 6.0 + 0.4 * i, 2048, 300))
    workload = tiny_workload(arrivals, duration=300.0)
    system = Slinfer(Cluster.build(0, 2), config=_gpu_only())
    report = system.run(workload)
    assert report.total_requests == 27
    # The run completes without losing requests to bookkeeping.
    assert report.dropped_count + len(report.completed) == 27


def test_preemption_never_targets_larger_batches():
    # Direct planner check: victims must have strictly smaller batches.
    from repro.consolidation.preemption import _victim_candidates

    arrivals = [("a", 0.5, 512, 200)] * 4 + [("b", 1.0, 512, 200)] * 2
    workload = tiny_workload(arrivals, duration=120.0)
    system = Slinfer(Cluster.build(0, 1), config=_gpu_only())
    system.run(workload, until=30.0)
    instances = [
        inst
        for deployment in ("a", "b")
        for inst in system.instances_of(deployment)
        if inst.state is InstanceState.ACTIVE
    ]
    for instance in instances:
        for victim in _victim_candidates(system, instance):
            assert victim.batch_size < instance.batch_size


def test_consolidation_disabled_never_preempts():
    arrivals = []
    for m in range(4):
        arrivals += [(f"m{m}", 0.5 + 0.05 * m, 1024, 300)] * 4
    workload = tiny_workload(arrivals, duration=240.0)
    config = _gpu_only(enable_consolidation=False)
    report = Slinfer(Cluster.build(0, 2), config=config).run(workload)
    assert report.preemptions == 0


def test_preempted_requests_survive():
    # Whenever preemptions happen, migrated requests must still terminate.
    arrivals = []
    for m in range(5):
        arrivals += [(f"m{m}", 0.5 + 0.02 * m, 1024, 250)] * 2
    for i in range(16):
        arrivals.append(("hot", 4.0 + 0.5 * i, 2048, 250))
    workload = tiny_workload(arrivals, duration=300.0)
    system = Slinfer(Cluster.build(0, 2), config=_gpu_only())
    report = system.run(workload)
    from repro.engine.request import RequestState

    for request in report.requests:
        assert request.state in (RequestState.COMPLETED, RequestState.DROPPED)
    if report.preemptions:
        assert report.migrations >= report.preemptions
