"""Tests for the hazard-aware memory orchestrator (§VII-C, Fig. 19)."""

import pytest

from repro.engine.instance import Instance, InstanceState
from repro.hardware import A100_80GB
from repro.hardware.node import Node
from repro.memory import MemoryOrchestrator, OpKind
from repro.models import LLAMA2_7B
from repro.sim import Simulator

GIB = 1024**3


class Recorder:
    """Listener that records orchestrator callbacks."""

    def __init__(self):
        self.loaded = []
        self.unloaded = []
        self.scaled = []

    def on_load_complete(self, instance):
        self.loaded.append(instance)

    def on_unload_complete(self, instance):
        self.unloaded.append(instance)

    def on_scale_complete(self, instance, op):
        self.scaled.append((instance, op))


@pytest.fixture
def env():
    sim = Simulator()
    node = Node("gpu-0", A100_80GB)
    listener = Recorder()
    orchestrator = MemoryOrchestrator(sim=sim, node=node, listener=listener)
    return sim, node, listener, orchestrator


def make_instance(inst_id=0):
    return Instance(
        inst_id=inst_id, deployment="d", model=LLAMA2_7B, node=Node("gpu-0", A100_80GB)
    )


def test_admit_loads_and_activates(env):
    sim, _node, listener, orch = env
    instance = make_instance()
    duration = orch.admit_instance(instance, kv_bytes=2 * GIB)
    assert duration > 0.5  # ≈1 s for 7B weights plus KV allocation
    assert orch.optimistic_used() == instance.model.weight_bytes + orch.planned_kv_bytes(instance)
    sim.run()
    assert listener.loaded == [instance]
    assert instance.kv.allocated_bytes == orch.planned_kv_bytes(instance)


def test_admission_respects_capacity(env):
    _sim, node, _listener, orch = env
    weights = LLAMA2_7B.weight_bytes
    assert orch.can_admit(weights, 2 * GIB)
    assert not orch.can_admit(weights, node.memory_bytes)


def test_double_admit_rejected(env):
    sim, _node, _listener, orch = env
    instance = make_instance()
    orch.admit_instance(instance, 1 * GIB)
    with pytest.raises(RuntimeError):
        orch.admit_instance(instance, 1 * GIB)


def test_scale_up_within_budget_executes(env):
    sim, _node, listener, orch = env
    instance = make_instance()
    orch.admit_instance(instance, 2 * GIB)
    sim.run()
    assert orch.request_scale(instance, 10 * GIB)
    sim.run()
    assert instance.kv.allocated_bytes >= 10 * GIB
    assert listener.scaled


def test_scale_up_beyond_optimistic_budget_rejected(env):
    sim, node, _listener, orch = env
    instance = make_instance()
    orch.admit_instance(instance, 2 * GIB)
    sim.run()
    too_big = node.memory_bytes  # weights + this > capacity
    assert not orch.request_scale(instance, too_big)


def test_scale_down_frees_budget_at_issue(env):
    sim, _node, _listener, orch = env
    instance = make_instance()
    orch.admit_instance(instance, 20 * GIB)
    sim.run()
    before = orch.optimistic_free()
    assert orch.request_scale(instance, 4 * GIB)
    assert orch.optimistic_free() > before  # optimistic: freed immediately
    assert orch.pessimistic_free() <= before + 1  # pessimistic: not yet


def test_reservation_station_defers_conflicting_scale_up(env):
    """A scale-up issued against memory still held by an in-flight
    scale-down parks in the reservation station and executes after the
    release (the Fig. 18 hazard made safe)."""
    sim, node, _listener, orch = env
    a = make_instance(0)
    b = make_instance(1)
    capacity = node.memory_bytes
    weights = LLAMA2_7B.weight_bytes
    # Fill the node: two instances splitting the remaining memory.
    kv_each = (capacity - 2 * weights) // 2
    orch.admit_instance(a, kv_each)
    orch.admit_instance(b, kv_each)
    sim.run()
    orch.assert_no_oom()
    # a shrinks; b grows into the freed space at the same instant.
    assert orch.request_scale(a, 2 * GIB)
    assert orch.request_scale(b, kv_each + 4 * GIB)
    account_b = orch._accounts[b.inst_id]
    assert account_b.active_op is not None
    assert account_b.active_op.state.value == "reserved"  # parked
    orch.assert_no_oom()
    sim.run()
    orch.assert_no_oom()
    assert b.kv.allocated_bytes >= kv_each + 4 * GIB - b.kv.block_bytes


def test_unload_frees_and_notifies(env):
    sim, _node, listener, orch = env
    instance = make_instance()
    orch.admit_instance(instance, 2 * GIB)
    sim.run()
    orch.unload_instance(instance)
    sim.run()
    assert listener.unloaded == [instance]
    assert instance.state is InstanceState.UNLOADED
    assert orch.optimistic_used() == 0
    assert not orch.has_instance(instance)


def test_unload_waits_for_executing_scale(env):
    sim, _node, listener, orch = env
    instance = make_instance()
    orch.admit_instance(instance, 2 * GIB)
    sim.run()
    orch.request_scale(instance, 12 * GIB)  # executing now
    orch.unload_instance(instance)  # must defer until the resize completes
    sim.run()
    assert listener.unloaded == [instance]
    assert orch.optimistic_used() == 0


def test_retarget_load_kv_grows_initial_pool(env):
    sim, _node, _listener, orch = env
    instance = make_instance()
    orch.admit_instance(instance, 2 * GIB)
    assert orch.retarget_load_kv(instance, 6 * GIB)
    sim.run()
    assert instance.kv.allocated_bytes >= 6 * GIB - instance.kv.block_bytes


def test_scale_coalescing_while_executing(env):
    sim, _node, _listener, orch = env
    instance = make_instance()
    orch.admit_instance(instance, 2 * GIB)
    sim.run()
    assert orch.request_scale(instance, 8 * GIB)
    assert orch.request_scale(instance, 12 * GIB)  # coalesced follow-up
    sim.run()
    assert instance.kv.allocated_bytes >= 12 * GIB - instance.kv.block_bytes


def test_op_metrics_emitted():
    sim = Simulator()
    node = Node("gpu-0", A100_80GB)
    ops = []
    orch = MemoryOrchestrator(
        sim=sim, node=node, listener=Recorder(), on_op_metric=lambda op, d: ops.append(op)
    )
    instance = make_instance()
    orch.admit_instance(instance, 2 * GIB)
    sim.run()
    orch.request_scale(instance, 6 * GIB)
    sim.run()
    kinds = {op.kind for op in ops}
    assert OpKind.LOAD in kinds
    assert OpKind.SCALE_UP in kinds
