"""Tests for Eq. 2 KV demand estimation and the Ō tracker."""

import pytest

from repro.engine.instance import Instance
from repro.engine.request import Request
from repro.hardware import A100_80GB
from repro.hardware.node import Node
from repro.memory import OutputLengthEstimator, kv_required_bytes
from repro.memory.estimator import initial_kv_required, kv_required_bytes_for_tokens
from repro.models import LLAMA2_7B


def make_instance():
    return Instance(
        inst_id=0, deployment="d", model=LLAMA2_7B, node=Node("gpu-0", A100_80GB)
    )


def make_request(req_id=0, input_len=1000, output_len=100, tokens_out=0):
    request = Request(
        req_id=req_id,
        deployment="d",
        arrival=0.0,
        input_len=input_len,
        output_len=output_len,
        ttft_slo=1.0,
        tpot_slo=0.25,
    )
    request.tokens_out = tokens_out
    return request


def test_estimator_returns_prior_when_no_history():
    estimator = OutputLengthEstimator(prior=256.0)
    assert estimator.average("unknown") == 256.0


def test_estimator_converges_to_observed_mean():
    estimator = OutputLengthEstimator(prior=256.0, prior_weight=4.0)
    for _ in range(400):
        estimator.observe("d", 100)
    assert estimator.average("d") == pytest.approx(100, rel=0.05)


def test_estimator_is_per_deployment():
    estimator = OutputLengthEstimator()
    estimator.observe("a", 500)
    assert estimator.average("b") == estimator.prior


def test_estimator_rejects_nonpositive():
    with pytest.raises(ValueError):
        OutputLengthEstimator().observe("d", 0)


# ----------------------------------------------------------------------
# Eq. 2
# ----------------------------------------------------------------------
def test_lmin_floor_is_max_context():
    # §VII-A: L_min = the model's maximum context length.
    instance = make_instance()
    empty = kv_required_bytes(instance, avg_output_len=256.0)
    floor = kv_required_bytes_for_tokens(LLAMA2_7B, 0)
    assert empty == floor
    assert empty >= LLAMA2_7B.max_context * LLAMA2_7B.kv_bytes_per_token


def test_demand_uses_avg_output_for_running_requests():
    instance = make_instance()
    request = make_request(input_len=3000, tokens_out=10)
    instance.admit_to_batch(request)
    require = kv_required_bytes(instance, avg_output_len=500.0)
    expected_tokens = 3000 + 500  # max(O_r=10, Ō=500)
    assert require >= expected_tokens * LLAMA2_7B.kv_bytes_per_token


def test_generated_tokens_beyond_avg_counted():
    instance = make_instance()
    request = make_request(input_len=3000, tokens_out=900)
    instance.admit_to_batch(request)
    require = kv_required_bytes(instance, avg_output_len=500.0)
    assert require >= (3000 + 900) * LLAMA2_7B.kv_bytes_per_token


def test_demand_sums_over_requests():
    instance = make_instance()
    for idx in range(4):
        instance.admit_to_batch(make_request(req_id=idx, input_len=2000))
    require = kv_required_bytes(instance, avg_output_len=256.0)
    assert require >= 4 * (2000 + 256) * LLAMA2_7B.kv_bytes_per_token


def test_extra_requests_included():
    instance = make_instance()
    base = kv_required_bytes(instance, 256.0)
    extra = make_request(input_len=3000)
    with_extra = kv_required_bytes(instance, 256.0, extra_requests=[extra])
    assert with_extra >= base  # both hit the L_min floor here
    for idx in range(3):
        instance.admit_to_batch(make_request(req_id=idx, input_len=2000))
    grown = kv_required_bytes(instance, 256.0, extra_requests=[extra])
    assert grown > kv_required_bytes(instance, 256.0)


def test_initial_kv_required_for_new_instance():
    request = make_request(input_len=2000, output_len=50)
    require = initial_kv_required(LLAMA2_7B, request, avg_output_len=300.0)
    assert require >= LLAMA2_7B.max_context * LLAMA2_7B.kv_bytes_per_token
