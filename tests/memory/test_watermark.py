"""Tests for the watermark scaling policy (§VII-B)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory import WatermarkPolicy

GIB = 1024**3


def test_recommended_adds_watermark():
    policy = WatermarkPolicy(watermark=0.25)
    assert policy.recommended_bytes(4 * GIB) == 5 * GIB


def test_scale_up_when_below_require():
    policy = WatermarkPolicy(watermark=0.25)
    assert policy.needs_scale_up(current_bytes=3 * GIB, required_bytes=4 * GIB)
    assert not policy.needs_scale_up(current_bytes=4 * GIB, required_bytes=4 * GIB)


def test_lazy_scale_down_hysteresis():
    # Scale down only when recommend·(1+w) < current (§VII-B).
    policy = WatermarkPolicy(watermark=0.25)
    require = 4 * GIB
    # recommend = 5 GiB; threshold = 6.25 GiB
    assert not policy.should_scale_down(current_bytes=6 * GIB, required_bytes=require)
    assert policy.should_scale_down(current_bytes=7 * GIB, required_bytes=require)


def test_scale_down_target_is_recommend():
    policy = WatermarkPolicy(watermark=0.25)
    assert policy.scale_down_target(4 * GIB) == 5 * GIB


def test_zero_watermark_disables_hysteresis():
    policy = WatermarkPolicy(watermark=0.0)
    assert policy.recommended_bytes(4 * GIB) == 4 * GIB
    assert policy.should_scale_down(current_bytes=4 * GIB + 1, required_bytes=4 * GIB)


def test_negative_watermark_rejected():
    with pytest.raises(ValueError):
        WatermarkPolicy(watermark=-0.1)


@given(
    require=st.integers(min_value=1, max_value=10**12),
    current=st.integers(min_value=0, max_value=10**12),
    watermark=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_no_pingpong_property(require, current, watermark):
    """A size the policy just scaled to never immediately triggers the
    opposite operation — the hysteresis that kills the ping-pong effect."""
    policy = WatermarkPolicy(watermark=watermark)
    if policy.needs_scale_up(current, require):
        after = policy.recommended_bytes(require)
        assert not policy.should_scale_down(after, require)
    if policy.should_scale_down(current, require):
        after = policy.scale_down_target(require)
        assert not policy.needs_scale_up(after, require)
