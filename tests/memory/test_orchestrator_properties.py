"""Property-based test: the orchestrator can never OOM a node.

Random interleavings of admissions, scale-ups, scale-downs, and unloads —
with operations completing asynchronously — must keep the *pessimistic
actual* allocation within node capacity at every event boundary (the
Fig. 18 guarantee)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.instance import Instance
from repro.hardware import A100_80GB
from repro.hardware.node import Node
from repro.memory import MemoryOrchestrator
from repro.models import LLAMA2_7B
from repro.sim import Simulator

GIB = 1024**3


class _Quiet:
    def on_load_complete(self, instance):
        pass

    def on_unload_complete(self, instance):
        pass

    def on_scale_complete(self, instance, op):
        pass


action = st.tuples(
    st.sampled_from(["admit", "scale", "unload", "advance"]),
    st.integers(min_value=0, max_value=5),  # instance slot
    st.integers(min_value=0, max_value=70),  # target size in GiB
    st.floats(min_value=0.01, max_value=3.0),  # time advance
)


@settings(max_examples=120, deadline=None)
@given(actions=st.lists(action, min_size=5, max_size=60))
def test_no_oom_under_random_interleavings(actions):
    sim = Simulator()
    node = Node("gpu-0", A100_80GB)
    orch = MemoryOrchestrator(sim=sim, node=node, listener=_Quiet())
    instances: dict[int, Instance] = {}
    next_id = 0

    for kind, slot, size_gib, advance in actions:
        if kind == "admit" and slot not in instances:
            instance = Instance(
                inst_id=next_id,
                deployment=f"d{slot}",
                model=LLAMA2_7B,
                node=node,
            )
            next_id += 1
            kv = size_gib * GIB // 8
            if orch.can_admit(instance.model.weight_bytes, kv):
                orch.admit_instance(instance, kv)
                instances[slot] = instance
        elif kind == "scale" and slot in instances:
            orch.request_scale(instances[slot], size_gib * GIB)
        elif kind == "unload" and slot in instances:
            instance = instances.pop(slot)
            if orch.has_instance(instance):
                orch.unload_instance(instance)
        else:
            sim.run(until=sim.now + advance)
        orch.assert_no_oom()

    sim.run()
    orch.assert_no_oom()
    # After draining, every surviving account is stable (no pending ops) and
    # the optimistic and pessimistic views coincide.
    assert orch.optimistic_used() == orch.pessimistic_used()


@settings(max_examples=60, deadline=None)
@given(
    kv_targets=st.lists(st.integers(min_value=1, max_value=60), min_size=1, max_size=10)
)
def test_sequential_scales_converge_to_last_target(kv_targets):
    sim = Simulator()
    node = Node("gpu-0", A100_80GB)
    orch = MemoryOrchestrator(sim=sim, node=node, listener=_Quiet())
    instance = Instance(inst_id=0, deployment="d", model=LLAMA2_7B, node=node)
    orch.admit_instance(instance, 1 * GIB)
    sim.run()
    accepted_last = None
    for target_gib in kv_targets:
        if orch.request_scale(instance, target_gib * GIB):
            accepted_last = target_gib * GIB
    sim.run()
    orch.assert_no_oom()
    if accepted_last is not None:
        assert instance.kv.allocated_bytes == instance.kv.round_to_blocks(accepted_last)
