"""Tests for the SLO policy (§IX-A)."""

import pytest

from repro.slo import DEFAULT_SLO, SloPolicy, ttft_slo


def test_ttft_floor_for_short_inputs():
    assert ttft_slo(1) == 0.5
    assert ttft_slo(256) == 0.5  # 256/512 = 0.5


def test_ttft_scales_linearly_with_length():
    assert ttft_slo(1024) == pytest.approx(2.0)
    assert ttft_slo(2048) == pytest.approx(4.0)


def test_ttft_ceiling_at_8_seconds():
    assert ttft_slo(4096) == 8.0
    assert ttft_slo(32768) == 8.0


def test_negative_length_rejected():
    with pytest.raises(ValueError):
        ttft_slo(-1)


def test_default_tpot_is_250ms():
    assert DEFAULT_SLO.tpot == 0.25


def test_ttft_override_for_tight_slo_studies():
    tight = SloPolicy(tpot=0.1, ttft_override=1.0)
    assert tight.ttft(8192) == 1.0
    assert tight.tpot == 0.1
