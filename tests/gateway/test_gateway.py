"""The serving gateway: bridge semantics and HTTP end-to-end behaviour.

The headline contract (ISSUE acceptance): shadow-replaying a recorded
trace through the gateway produces a final RunReport canonically equal
to the batch ``execute_spec`` run of the same spec — the live path and
the batch path are the same simulator, one request of lookahead apart.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.gateway import GatewayClient, GatewayError, GatewayServer, SimBridge
from repro.runner import RunSpec, build_workload, execute_spec
from repro.workloads import StreamOrderError


def _spec(**overrides) -> RunSpec:
    defaults = dict(
        system="slinfer",
        scenario="azure",
        n_models=2,
        cluster="cpu2-gpu2",
        seed=1,
        scale="smoke",
        duration=120.0,
    )
    defaults.update(overrides)
    return RunSpec(**defaults)


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# SimBridge (no HTTP)
# ----------------------------------------------------------------------
def test_shadow_replay_matches_batch_run():
    spec = _spec()
    trace = build_workload(spec)
    bridge = SimBridge.from_spec(spec)
    bridge.start()
    verdicts = [bridge.submit_spec(request) for request in trace.requests]
    report = bridge.finalize()

    assert len(verdicts) == trace.total_requests
    assert [v.index for v in verdicts] == list(range(len(verdicts)))
    assert all(v.verdict in ("admitted", "queued", "dropped") for v in verdicts)
    admitted = [v for v in verdicts if v.verdict == "admitted"]
    assert admitted, "expected at least one admitted request at this load"
    assert all(v.predicted_ttft is not None and v.predicted_ttft >= 0 for v in admitted)
    assert all(v.ttft_slo > 0 for v in verdicts)

    batch = execute_spec(spec).report
    assert _canonical(report.to_dict(include_volatile=False)) == _canonical(
        batch.to_dict(include_volatile=False)
    )


def test_bridge_rejects_out_of_order_shadow_arrivals():
    spec = _spec()
    bridge = SimBridge.from_spec(spec)
    bridge.start()
    deployment = next(iter(bridge.stream.deployments))
    bridge.submit(deployment, 128, 16, arrival=10.0)
    with pytest.raises(StreamOrderError):
        bridge.submit(deployment, 128, 16, arrival=5.0)
    bridge.finalize()


def test_paced_mode_stamps_wall_clock_arrivals():
    from repro.runner import build_system

    spec = _spec()
    source = build_workload(spec)
    # duration=None: an open-ended interactive session that drains on
    # finalize rather than at a scenario horizon.
    bridge = SimBridge(
        build_system(spec),
        dict(source.deployments),
        duration=None,
        mode="paced",
        pace_ratio=50.0,
    )
    bridge.start()
    deployment = next(iter(source.deployments))
    first = bridge.submit(deployment, 128, 16)
    second = bridge.submit(deployment, 128, 16)
    assert 0.0 <= first.arrival <= second.arrival
    report = bridge.finalize()
    assert report.total_requests == 2


def test_probe_is_advisory_and_validates_deployment():
    spec = _spec()
    bridge = SimBridge.from_spec(spec)
    bridge.start()
    deployment = next(iter(bridge.stream.deployments))
    probe = bridge.probe(deployment)
    assert probe["decision"] in ("admit", "cold-start")
    assert probe["queue_depth"] == 0
    with pytest.raises(GatewayError, match="unknown deployment"):
        bridge.probe("no-such-deployment")
    # Probing submitted nothing.
    assert bridge.outcome_counts["submitted"] == 0
    bridge.finalize()


def test_bridge_misuse_errors():
    spec = _spec()
    bridge = SimBridge.from_spec(spec)
    with pytest.raises(GatewayError, match="not started"):
        bridge.finalize()
    deployment = next(iter(bridge.stream.deployments))
    with pytest.raises(GatewayError, match="not started"):
        bridge.submit(deployment, 128, 16)
    bridge.start()
    with pytest.raises(GatewayError, match="already started"):
        bridge.start()
    bridge.finalize()
    with pytest.raises(ValueError, match="unknown gateway mode"):
        SimBridge.from_spec(spec, mode="turbo")


# ----------------------------------------------------------------------
# HTTP end to end
# ----------------------------------------------------------------------
@pytest.fixture
def served():
    spec = _spec()
    server = GatewayServer(SimBridge.from_spec(spec), port=0)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    assert server.ready.wait(timeout=60), "server never bound its socket"
    client = GatewayClient(port=server.port)
    yield spec, client
    try:
        client.shutdown()
    except Exception:
        pass  # the test may already have shut it down
    client.close()
    thread.join(timeout=30)
    assert not thread.is_alive()


def test_http_replay_end_to_end(served):
    spec, client = served
    health = client.health()
    assert health["status"] == "ok" and health["mode"] == "shadow"

    trace = build_workload(spec)
    verdicts = client.replay(trace.requests)
    assert [v["index"] for v in verdicts] == list(range(trace.total_requests))

    deployment = next(iter(trace.deployments))
    probe = client.admit(deployment)
    assert probe["decision"] in ("admit", "cold-start")

    final = client.report()
    assert final["outcomes"]["submitted"] == trace.total_requests
    batch = execute_spec(spec).report.to_dict(include_volatile=False)
    assert _canonical(final["report"]) == _canonical(batch)

    # /report is idempotent; ingest after it is a conflict.
    assert client.report() == final
    status, payload = client.request(
        "POST", "/v1/completions", {"model": deployment, "prompt_tokens": 64}
    )
    assert status == 409 and "error" in payload


def test_http_error_shapes(served):
    _spec_unused, client = served
    status, payload = client.request("GET", "/no/such/route")
    assert status == 404 and "error" in payload
    status, payload = client.request("POST", "/v1/completions", {"prompt_tokens": 64})
    assert status == 400 and "model" in payload["error"]
    status, payload = client.request(
        "POST", "/v1/completions", {"model": "nope", "prompt_tokens": -3}
    )
    assert status == 400
    # A literal prompt is tokenized heuristically instead of rejected.
    status, payload = client.request(
        "POST",
        "/v1/completions",
        {"model": next(iter(build_workload(_spec_unused).deployments)), "prompt": "x" * 64},
    )
    assert status == 200 and payload["verdict"] in ("admitted", "queued", "dropped")
