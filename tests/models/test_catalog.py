"""Tests for the model catalog: the paper's published memory footprints."""

import pytest

from repro.models import (
    CATALOG,
    CODELLAMA_34B,
    CODESTRAL_22B,
    LLAMA2_13B,
    LLAMA2_7B,
    LLAMA32_3B,
    ModelSpec,
    Quantization,
    get_model,
)

GIB = 1024**3


def test_llama2_7b_weights_match_paper():
    # §IV-B: "7B and 13B LLMs need at least 14GB and 26GB of memory"
    assert LLAMA2_7B.weight_bytes == pytest.approx(14e9, rel=0.05)


def test_llama2_13b_weights_match_paper():
    assert LLAMA2_13B.weight_bytes == pytest.approx(26e9, rel=0.05)


def test_codestral_22b_weights_match_paper():
    # §X: "the model weights alone consume 44GB"
    assert CODESTRAL_22B.weight_bytes == pytest.approx(44e9, rel=0.05)


def test_llama2_7b_kv_bytes_per_token():
    # 2 (K,V) × 32 layers × 32 heads × 128 dim × 2 bytes = 512 KiB/token
    assert LLAMA2_7B.kv_bytes_per_token == 512 * 1024


def test_llama2_13b_kv_bytes_per_token():
    assert LLAMA2_13B.kv_bytes_per_token == 800 * 1024


def test_gqa_reduces_kv_footprint():
    # Llama-3.2-3B uses 8 KV heads (GQA): much smaller per-token cache.
    assert LLAMA32_3B.kv_bytes_per_token < LLAMA2_7B.kv_bytes_per_token / 3


def test_compute_scale_is_relative_to_7b():
    assert LLAMA2_7B.compute_scale == pytest.approx(1.0)
    assert LLAMA2_13B.compute_scale == pytest.approx(1.93, rel=0.02)
    assert CODELLAMA_34B.compute_scale == pytest.approx(5.0, rel=0.02)


def test_int4_quantization_quarters_weights():
    quantized = CODESTRAL_22B.quantized(Quantization.INT4)
    assert quantized.weight_bytes == pytest.approx(CODESTRAL_22B.weight_bytes / 4, rel=0.01)
    # §X: 22B INT4 weights (~11 GB) become shareable on an 80 GB GPU.
    assert quantized.weight_bytes < 12e9


def test_quantization_preserves_kv_cache_size():
    quantized = LLAMA2_7B.quantized(Quantization.INT4)
    assert quantized.kv_bytes_per_token == LLAMA2_7B.kv_bytes_per_token


def test_quantized_name_is_distinct():
    assert LLAMA2_7B.quantized(Quantization.INT8).name == "llama-2-7b-int8"


def test_catalog_lookup():
    assert get_model("llama-2-7b") is LLAMA2_7B


def test_catalog_lookup_unknown_raises_with_hint():
    with pytest.raises(KeyError, match="llama-2-7b"):
        get_model("no-such-model")


def test_all_catalog_models_have_positive_footprints():
    for spec in CATALOG.values():
        assert spec.weight_bytes > 0
        assert spec.kv_bytes_per_token > 0
        assert spec.max_context >= 4096


def test_invalid_specs_rejected():
    with pytest.raises(ValueError):
        ModelSpec(name="bad", params=-1, n_layers=1, hidden_size=1, n_heads=1, n_kv_heads=1)
    with pytest.raises(ValueError):
        ModelSpec(name="bad", params=1e9, n_layers=1, hidden_size=1, n_heads=2, n_kv_heads=4)
