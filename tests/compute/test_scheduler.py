"""Tests for token-level min-headroom work selection (§VI-A, Fig. 14)."""

from repro.compute import WorkKind, select_next_work
from repro.compute.scheduler import instance_work_items
from repro.engine.executor import Executor
from repro.engine.instance import Instance, InstanceState
from repro.engine.request import Request
from repro.hardware import A100_80GB
from repro.hardware.node import Node
from repro.models import LLAMA2_7B


def make_env():
    node = Node("gpu-0", A100_80GB)
    executor = Executor(exec_id="x", node=node)
    return node, executor


def make_instance(node, inst_id):
    instance = Instance(inst_id=inst_id, deployment=f"d{inst_id}", model=LLAMA2_7B, node=node)
    instance.state = InstanceState.ACTIVE
    return instance


def make_request(req_id, arrival, tokens_out=0):
    request = Request(
        req_id=req_id,
        deployment="d",
        arrival=arrival,
        input_len=100,
        output_len=50,
        ttft_slo=1.0,
        tpot_slo=0.25,
    )
    request.tokens_out = tokens_out
    return request


def test_selects_most_urgent_across_instances():
    node, executor = make_env()
    relaxed = make_instance(node, 0)
    relaxed.admit_to_batch(make_request(0, arrival=10.0, tokens_out=20))
    urgent = make_instance(node, 1)
    urgent.admit_to_batch(make_request(1, arrival=0.0, tokens_out=0))
    executor.add_instance(relaxed)
    executor.add_instance(urgent)
    item = select_next_work(executor, now=10.0)
    assert item.instance is urgent
    assert item.kind is WorkKind.DECODE


def test_prefill_chosen_when_most_urgent():
    node, executor = make_env()
    instance = make_instance(node, 0)
    decode_req = make_request(0, arrival=0.0, tokens_out=40)  # lots of banked headroom
    prefill_req = make_request(1, arrival=9.8)  # fresh, deadline soon
    instance.admit_to_batch(decode_req)
    instance.enqueue(prefill_req)
    executor.add_instance(instance)
    item = select_next_work(executor, now=10.0)
    assert item.kind is WorkKind.PREFILL
    assert item.request is prefill_req


def test_no_work_returns_none():
    node, executor = make_env()
    executor.add_instance(make_instance(node, 0))
    assert select_next_work(executor, now=0.0) is None


def test_loading_instance_not_runnable():
    node, executor = make_env()
    instance = make_instance(node, 0)
    instance.state = InstanceState.LOADING
    instance.enqueue(make_request(0, arrival=0.0))
    executor.add_instance(instance)
    assert select_next_work(executor, now=0.0) is None


def test_work_items_expose_both_kinds():
    node, _ = make_env()
    instance = make_instance(node, 0)
    instance.admit_to_batch(make_request(0, arrival=0.0))
    instance.enqueue(make_request(1, arrival=0.0))
    items = instance_work_items(instance, now=0.5)
    kinds = {item.kind for item in items}
    assert kinds == {WorkKind.PREFILL, WorkKind.DECODE}


def test_decode_urgency_is_min_over_batch():
    node, _ = make_env()
    instance = make_instance(node, 0)
    a = make_request(0, arrival=0.0, tokens_out=2)
    b = make_request(1, arrival=0.0, tokens_out=8)
    instance.admit_to_batch(a)
    instance.admit_to_batch(b)
    (item,) = instance_work_items(instance, now=1.0)
    assert item.urgency == min(a.headroom(1.0), b.headroom(1.0))


def test_select_next_work_matches_reference_enumeration():
    """The optimized single-scan selection must equal "materialize every
    work item via instance_work_items and take the first strict min" —
    the reference semantics the production path compresses."""
    node, executor = make_env()
    req_id = iter(range(100))
    for inst_id, (batch_outs, pending_arrivals) in enumerate(
        [
            ([20], [9.8]),        # decode + prefill
            ([0, 8], []),         # decode only, two requests
            ([], [0.0, 5.0]),     # prefills only
            ([], []),             # idle
            ([0], [9.8]),         # tie candidates vs instance 0
        ]
    ):
        instance = make_instance(node, inst_id)
        for tokens_out in batch_outs:
            instance.admit_to_batch(
                make_request(next(req_id), arrival=0.0, tokens_out=tokens_out)
            )
        for arrival in pending_arrivals:
            instance.enqueue(make_request(next(req_id), arrival=arrival))
        executor.add_instance(instance)

    for now in (0.0, 5.0, 10.0, 30.0):
        reference = None
        for instance in executor.runnable_instances():
            for item in instance_work_items(instance, now):
                if reference is None or item.urgency < reference.urgency:
                    reference = item
        got = select_next_work(executor, now=now)
        assert got is not None and reference is not None
        assert (got.instance, got.kind, got.request, got.urgency) == (
            reference.instance,
            reference.kind,
            reference.request,
            reference.urgency,
        )
