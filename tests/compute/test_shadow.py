"""Tests for shadow validation (§VI-C): the three Fig. 15 cases."""

import pytest

from repro.compute import ShadowInstance, ShadowRequest, ShadowVerdict, shadow_validate
from repro.hardware import A100_80GB, XEON_GEN4_32C
from repro.models import LLAMA2_7B
from repro.perf import quantify
from repro.perf.laws import LatencyLaw


@pytest.fixture
def cpu_perf():
    return quantify(LatencyLaw(XEON_GEN4_32C, LLAMA2_7B))


@pytest.fixture
def gpu_perf():
    return quantify(LatencyLaw(A100_80GB, LLAMA2_7B))


def new_request(now, input_len=1024, ttft=2.0, grace=0.0, tpot=0.25):
    return ShadowRequest(
        deadline_base=now + ttft + grace,
        tpot_slo=tpot,
        tokens_out=0,
        context_len=input_len,
        prefill_len=input_len,
        is_new=True,
    )


def running_request(now, headroom, tokens_out=10, context_len=1024, tpot=0.25):
    # deadline_base + tpot*tokens_out - now = headroom
    return ShadowRequest(
        deadline_base=now + headroom - tpot * tokens_out,
        tpot_slo=tpot,
        tokens_out=tokens_out,
        context_len=context_len,
    )


def test_empty_executor_accepts_new_request(gpu_perf):
    instance = ShadowInstance(perf=gpu_perf)
    instance.prefill_queue.append(new_request(now=0.0))
    assert shadow_validate([instance], now=0.0) is ShadowVerdict.PASS


def test_case1_new_request_ttft_violation(cpu_perf):
    # An 8K prefill on a CPU takes ~6.8 s; with a 1 s TTFT budget it fails.
    instance = ShadowInstance(perf=cpu_perf)
    instance.prefill_queue.append(new_request(now=0.0, input_len=8192, ttft=1.0))
    assert shadow_validate([instance], now=0.0) is ShadowVerdict.NEW_REQUEST_TTFT


def test_case2_existing_request_delayed_by_prefill(cpu_perf):
    # A heavily batched instance barely keeps pace (decode round ≈ 0.23 s
    # vs 0.25 s TPOT), so the 3 s prefill of the newcomer inevitably
    # starves the existing requests: case 2.
    instance = ShadowInstance(perf=cpu_perf)
    for _ in range(20):
        instance.batch.append(running_request(now=0.0, headroom=0.3, context_len=2048))
    instance.prefill_queue.append(new_request(now=0.0, input_len=4096, ttft=8.0))
    verdict = shadow_validate([instance], now=0.0)
    # Depending on which side of the contention breaks first this is
    # classified as case 1 or case 2 — either way the placement is refused.
    assert verdict in (ShadowVerdict.EXISTING_DELAYED, ShadowVerdict.NEW_REQUEST_TTFT)


def test_case2_tight_batch_cannot_absorb_quick_prefill(cpu_perf):
    # A short prefill fits its own TTFT easily but delays a batch that has
    # no slack at all: the existing requests violate first (case 2).
    instance = ShadowInstance(perf=cpu_perf)
    for _ in range(22):
        instance.batch.append(running_request(now=0.0, headroom=0.05, context_len=2048))
    instance.prefill_queue.append(new_request(now=0.0, input_len=512, ttft=8.0))
    assert shadow_validate([instance], now=0.0) is ShadowVerdict.EXISTING_DELAYED


def test_banked_headroom_absorbs_a_prefill(cpu_perf):
    # With a single fast-decoding request, the min-headroom scheduler banks
    # headroom before running the long prefill — the placement is valid.
    instance = ShadowInstance(perf=cpu_perf)
    instance.batch.append(running_request(now=0.0, headroom=0.3))
    instance.prefill_queue.append(new_request(now=0.0, input_len=4096, ttft=8.0))
    assert shadow_validate([instance], now=0.0) is ShadowVerdict.PASS


def test_case3_aggregate_decode_over_budget(cpu_perf):
    # Three CPU instances each with a hefty batch: one decode round across
    # the node exceeds the 250 ms TPOT budget even though each instance
    # alone would be fine.
    instances = []
    for _ in range(3):
        instance = ShadowInstance(perf=cpu_perf)
        for idx in range(8):
            instance.batch.append(
                running_request(now=0.0, headroom=5.0, context_len=2048)
            )
        instances.append(instance)
    verdict = shadow_validate(instances, now=0.0)
    assert verdict is ShadowVerdict.AGGREGATE_DECODE


def test_gpu_absorbs_what_cpu_cannot(gpu_perf, cpu_perf):
    def build(perf):
        instances = []
        for _ in range(3):
            instance = ShadowInstance(perf=perf)
            for _ in range(4):
                instance.batch.append(
                    running_request(now=0.0, headroom=5.0, context_len=2048)
                )
            instances.append(instance)
        instances[0].prefill_queue.append(new_request(now=0.0, input_len=512, ttft=1.0))
        return instances

    assert shadow_validate(build(gpu_perf), now=0.0) is ShadowVerdict.PASS
    assert shadow_validate(build(cpu_perf), now=0.0) is not ShadowVerdict.PASS


def test_busy_until_delays_the_virtual_start(cpu_perf):
    # The same placement passes when the executor is free but fails when
    # the current iteration holds the executor long enough.
    def build():
        instance = ShadowInstance(perf=cpu_perf)
        instance.prefill_queue.append(new_request(now=0.0, input_len=1024, ttft=2.0))
        return [instance]

    assert shadow_validate(build(), now=0.0, busy_until=0.0) is ShadowVerdict.PASS
    assert (
        shadow_validate(build(), now=0.0, busy_until=1.6)
        is ShadowVerdict.NEW_REQUEST_TTFT
    )


def test_overestimate_rejects_borderline(cpu_perf):
    # ~1.9 s estimated prefill with a 2.0 s budget: passes at 1.0×, fails
    # at the paper's 1.10× safety factor.
    instance = ShadowInstance(perf=cpu_perf)
    instance.prefill_queue.append(new_request(now=0.0, input_len=2900, ttft=2.0))
    assert shadow_validate([instance], now=0.0, overestimate=1.0) is ShadowVerdict.PASS
    instance2 = ShadowInstance(perf=cpu_perf)
    instance2.prefill_queue.append(new_request(now=0.0, input_len=2900, ttft=2.0))
    assert (
        shadow_validate([instance2], now=0.0, overestimate=1.10)
        is not ShadowVerdict.PASS
    )


def test_loading_instance_waits_for_ready(cpu_perf):
    # A cold-starting instance only begins work at ready_at; with grace
    # covering the cold start the request still passes.
    instance = ShadowInstance(perf=cpu_perf, ready_at=1.0)
    instance.prefill_queue.append(new_request(now=0.0, input_len=512, ttft=1.0, grace=1.0))
    assert shadow_validate([instance], now=0.0) is ShadowVerdict.PASS


def test_mixed_prefill_and_decode_interleaving(gpu_perf):
    instance = ShadowInstance(perf=gpu_perf)
    for _ in range(8):
        instance.batch.append(running_request(now=0.0, headroom=1.0))
    instance.prefill_queue.append(new_request(now=0.0, input_len=2048, ttft=4.0))
    assert shadow_validate([instance], now=0.0) is ShadowVerdict.PASS
