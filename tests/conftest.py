"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

# Every simulated run in the suite re-proves the conservation audits
# (KV block accounting, request arrivals = completed + dropped +
# in-flight) at finalize; see repro.analysis.audit.  setdefault so an
# explicit REPRO_AUDIT=0 still disables it for debugging.
os.environ.setdefault("REPRO_AUDIT", "1")

from repro.hardware import Cluster
from repro.perf import PerfDatabase
from repro.sim import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def perf_db() -> PerfDatabase:
    # Deterministic estimates in unit tests: no execution jitter.
    return PerfDatabase(jitter_sigma=0.0, seed=0)


@pytest.fixture
def small_cluster() -> Cluster:
    return Cluster.build(cpu_count=2, gpu_count=2)


@pytest.fixture
def testbed() -> Cluster:
    return Cluster.build(cpu_count=4, gpu_count=4)
