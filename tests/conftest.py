"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.hardware import Cluster
from repro.perf import PerfDatabase
from repro.sim import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def perf_db() -> PerfDatabase:
    # Deterministic estimates in unit tests: no execution jitter.
    return PerfDatabase(jitter_sigma=0.0, seed=0)


@pytest.fixture
def small_cluster() -> Cluster:
    return Cluster.build(cpu_count=2, gpu_count=2)


@pytest.fixture
def testbed() -> Cluster:
    return Cluster.build(cpu_count=4, gpu_count=4)
