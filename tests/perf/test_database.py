"""Tests for the PerfDatabase: caching, jitter, CPU feasibility."""

import pytest

from repro.hardware import A100_80GB, XEON_GEN3_32C, XEON_GEN4_32C
from repro.models import CODELLAMA_34B, LLAMA2_7B, LLAMA2_13B, LLAMA31_8B
from repro.perf import PerfDatabase
from repro.slo import DEFAULT_SLO


def test_quantified_objects_are_cached(perf_db):
    a = perf_db.quantified(XEON_GEN4_32C, LLAMA2_7B)
    b = perf_db.quantified(XEON_GEN4_32C, LLAMA2_7B)
    assert a is b
    c = perf_db.quantified(XEON_GEN4_32C, LLAMA2_7B, fraction=0.5)
    assert c is not a


def test_zero_jitter_executions_match_law(perf_db):
    law = perf_db.law(A100_80GB, LLAMA2_7B)
    assert perf_db.execute_prefill(A100_80GB, LLAMA2_7B, 1024) == law.prefill_seconds(1024)
    assert perf_db.execute_decode(A100_80GB, LLAMA2_7B, 4, 512) == law.decode_seconds(4, 512)


def test_jitter_perturbs_executions_mildly():
    db = PerfDatabase(jitter_sigma=0.02, seed=1)
    law = db.law(A100_80GB, LLAMA2_7B)
    truth = law.prefill_seconds(1024)
    samples = [db.execute_prefill(A100_80GB, LLAMA2_7B, 1024) for _ in range(200)]
    assert any(s != truth for s in samples)
    assert all(abs(s / truth - 1.0) < 0.12 for s in samples)
    mean = sum(samples) / len(samples)
    assert mean == pytest.approx(truth, rel=0.01)


def test_estimates_are_deterministic_despite_jitter():
    db = PerfDatabase(jitter_sigma=0.05, seed=2)
    first = db.estimate_tpot(A100_80GB, LLAMA2_7B, 8, 1024)
    again = db.estimate_tpot(A100_80GB, LLAMA2_7B, 8, 1024)
    assert first == again


# ----------------------------------------------------------------------
# CPU feasibility (§V fallback)
# ----------------------------------------------------------------------
def test_cpu_serves_short_7b(perf_db):
    assert perf_db.cpu_can_serve(XEON_GEN4_32C, LLAMA2_7B, 1024, DEFAULT_SLO)


def test_non_amx_cpu_excluded(perf_db):
    # §V: SLINFER excludes CPUs lacking matrix acceleration.
    assert not perf_db.cpu_can_serve(XEON_GEN3_32C, LLAMA2_7B, 256, DEFAULT_SLO)


def test_gpu_spec_never_cpu_feasible(perf_db):
    assert not perf_db.cpu_can_serve(A100_80GB, LLAMA2_7B, 256, DEFAULT_SLO)


def test_34b_not_cpu_feasible(perf_db):
    assert not perf_db.cpu_can_serve(XEON_GEN4_32C, CODELLAMA_34B, 512, DEFAULT_SLO)


def test_13b_feasible_short_not_long(perf_db):
    # §IV-A2: the 13B CPU feasibility edge sits around 5.6K input tokens.
    assert perf_db.cpu_can_serve(XEON_GEN4_32C, LLAMA2_13B, 1024, DEFAULT_SLO)
    assert not perf_db.cpu_can_serve(XEON_GEN4_32C, LLAMA2_13B, 6400, DEFAULT_SLO)


def test_8b_long_inputs_infeasible(perf_db):
    # §IX-I1: CPUs handle inputs up to ~8.4K under the 8 s cap.
    assert perf_db.cpu_can_serve(XEON_GEN4_32C, LLAMA31_8B, 4096, DEFAULT_SLO)
    assert not perf_db.cpu_can_serve(XEON_GEN4_32C, LLAMA31_8B, 12000, DEFAULT_SLO)


def test_tight_slo_shrinks_cpu_envelope(perf_db):
    # §IV-A2: under a 100 ms TPOT SLO only ≤7B models qualify, and at 50 ms
    # even 7B becomes infeasible.
    from repro.slo import SloPolicy

    slo_100 = SloPolicy(tpot=0.10)
    slo_50 = SloPolicy(tpot=0.05)
    assert perf_db.cpu_can_serve(XEON_GEN4_32C, LLAMA2_7B, 512, slo_100)
    assert not perf_db.cpu_can_serve(XEON_GEN4_32C, LLAMA2_13B, 512, slo_100)
    assert not perf_db.cpu_can_serve(XEON_GEN4_32C, LLAMA2_7B, 512, slo_50)


# ----------------------------------------------------------------------
# Jitter peek/commit (the vectorized engine's batched-draw protocol)
# ----------------------------------------------------------------------
def test_jitter_peek_does_not_consume():
    db = PerfDatabase(jitter_sigma=0.02, seed=7)
    peeked = db.jitter_peek(5)
    assert db.jitter_peek(5) == peeked
    assert [db._jitter() for _ in range(5)] == peeked


def test_jitter_commit_advances_the_stream():
    reference = PerfDatabase(jitter_sigma=0.02, seed=7)
    expected = [reference._jitter() for _ in range(10)]
    db = PerfDatabase(jitter_sigma=0.02, seed=7)
    head = db.jitter_peek(6)
    db.jitter_commit(4)  # take 4 of the 6 peeked draws
    tail = [db._jitter() for _ in range(6)]
    assert head[:4] + tail == expected


def test_jitter_peek_refill_preserves_stream_content():
    # Peeking past the buffered chunk must splice refills exactly where
    # sequential consumption would have drawn them.
    reference = PerfDatabase(jitter_sigma=0.02, seed=3)
    expected = [reference._jitter() for _ in range(2500)]
    db = PerfDatabase(jitter_sigma=0.02, seed=3)
    taken: list[float] = []
    while len(taken) < 2500:
        chunk = db.jitter_peek(700)
        db.jitter_commit(700)
        taken.extend(chunk)
    assert taken[:2500] == expected


def test_jitter_commit_requires_buffered_draws():
    db = PerfDatabase(jitter_sigma=0.02, seed=7)
    with pytest.raises(ValueError):
        db.jitter_commit(1)  # nothing buffered yet
    db.jitter_peek(3)
    with pytest.raises(ValueError):
        db.jitter_commit(len(db._jitter_buf) + 1)
    with pytest.raises(ValueError):
        db.jitter_peek(-1)


def test_jitter_peek_without_sigma_is_identity():
    db = PerfDatabase(jitter_sigma=0.0, seed=7)
    assert db.jitter_peek(4) == [1.0] * 4
    db.jitter_commit(4)  # no-op, must not raise
