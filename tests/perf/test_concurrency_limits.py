"""Table II reproduction: aggregated concurrency limits.

The limits must emerge from the latency/memory models (within ±1-2 of the
published cells — the paper's own numbers are profiled, ours derived).
"""

import pytest

from repro.hardware import A100_80GB, XEON_GEN4_32C
from repro.models import LLAMA2_13B, LLAMA2_7B, LLAMA32_3B
from repro.perf import (
    baseline_concurrency_limit,
    concurrency_limit,
    memory_concurrency_limit,
)


@pytest.mark.parametrize(
    "model,length,expected",
    [
        (LLAMA2_7B, 2048, 66),
        (LLAMA2_7B, 4096, 32),
        (LLAMA2_13B, 2048, 33),
        (LLAMA2_13B, 4096, 16),
    ],
)
def test_gpu_full_node_limits_match_table2(model, length, expected):
    assert concurrency_limit(A100_80GB, model, length) == pytest.approx(expected, abs=2)


@pytest.mark.parametrize(
    "model,length,expected",
    [(LLAMA2_7B, 2048, 27), (LLAMA2_7B, 4096, 15)],
)
def test_cpu_full_node_limits_match_table2(model, length, expected):
    assert concurrency_limit(XEON_GEN4_32C, model, length) == pytest.approx(expected, abs=1)


def test_cpu_13b_limit_matches_section9():
    assert concurrency_limit(XEON_GEN4_32C, LLAMA2_13B, 4096) == pytest.approx(6, abs=1)


def test_cpu_half_node_limit_matches_table2():
    # Table II: C-7B-2K at ½ node → 9 per instance.
    assert concurrency_limit(XEON_GEN4_32C, LLAMA2_7B, 2048, fraction=0.5) == pytest.approx(9, abs=1)


def test_cpu_third_node_limit_matches_table2():
    # Table II: C-7B-2K at ⅓ node → 2 per instance.
    assert concurrency_limit(XEON_GEN4_32C, LLAMA2_7B, 2048, fraction=1 / 3) == pytest.approx(2, abs=1)


def test_cpu_quarter_node_infeasible():
    # Table II's "-" cells: a quarter CPU misses TPOT even at batch 1.
    assert concurrency_limit(XEON_GEN4_32C, LLAMA2_7B, 2048, fraction=0.25) == 0


def test_partitioning_loses_aggregate_concurrency():
    # §IV-C: three ⅓-GPU instances reach about half the aggregate limit.
    full = concurrency_limit(A100_80GB, LLAMA2_7B, 2048)
    thirds = 3 * concurrency_limit(A100_80GB, LLAMA2_7B, 2048, fraction=1 / 3)
    assert thirds < 0.7 * full


def test_gpu_limits_are_memory_bound():
    # On GPUs the KV-capacity bound is the binding constraint (§IV-B).
    mem = memory_concurrency_limit(A100_80GB, LLAMA2_7B, 2048)
    assert concurrency_limit(A100_80GB, LLAMA2_7B, 2048) == mem


def test_memory_limit_zero_when_weights_dont_fit():
    assert memory_concurrency_limit(A100_80GB, LLAMA2_13B, 2048, fraction=0.25) == 0


@pytest.mark.parametrize(
    "hardware,model,shared,expected",
    [
        (XEON_GEN4_32C, LLAMA32_3B, False, 59),
        (XEON_GEN4_32C, LLAMA2_7B, False, 15),
        (XEON_GEN4_32C, LLAMA2_13B, False, 6),
        (A100_80GB, LLAMA32_3B, False, 160),
        (A100_80GB, LLAMA2_7B, False, 32),
        (A100_80GB, LLAMA2_13B, False, 16),
        (XEON_GEN4_32C, LLAMA32_3B, True, 23),
        (XEON_GEN4_32C, LLAMA2_7B, True, 4),
        (XEON_GEN4_32C, LLAMA2_13B, True, 6),
        (A100_80GB, LLAMA32_3B, True, 71),
        (A100_80GB, LLAMA2_7B, True, 12),
        (A100_80GB, LLAMA2_13B, True, 4),
    ],
)
def test_baseline_tailored_limits_are_papers(hardware, model, shared, expected):
    assert baseline_concurrency_limit(hardware, model, shared) == expected


def test_baseline_limit_for_unlisted_model_is_conservative():
    from repro.models import LLAMA31_8B

    derived = baseline_concurrency_limit(A100_80GB, LLAMA31_8B, shared=False)
    raw = concurrency_limit(A100_80GB, LLAMA31_8B, 4096)
    assert 0 < derived <= raw
