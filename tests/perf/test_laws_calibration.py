"""Calibration tests: the latency laws must reproduce the paper's numbers.

Table I anchors are checked within 5 %; derived statements (8 B decode
latency, 13 B CPU feasibility crossover, Fig. 6 shapes) within stated
tolerances.
"""

import pytest

from repro.hardware import A100_80GB, XEON_GEN3_32C, XEON_GEN4_32C
from repro.models import (
    CODELLAMA_34B,
    DEEPSEEK_QWEN_7B,
    LLAMA2_13B,
    LLAMA2_7B,
    LLAMA31_8B,
)
from repro.perf.laws import LatencyLaw
from repro.slo import ttft_slo


@pytest.fixture
def cpu7b():
    return LatencyLaw(XEON_GEN4_32C, LLAMA2_7B)


# ----------------------------------------------------------------------
# Table I — 4th-gen Xeon
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "length,expected_ms",
    [(256, 149), (1024, 567), (4096, 2748)],
)
def test_cpu_prefill_matches_table1(cpu7b, length, expected_ms):
    assert cpu7b.prefill_seconds(length) * 1000 == pytest.approx(expected_ms, rel=0.05)


@pytest.mark.parametrize(
    "batch,length,expected_ms",
    [(1, 1024, 71), (32, 1024, 196), (1, 4096, 80), (32, 4096, 459)],
)
def test_cpu_decode_matches_table1(cpu7b, batch, length, expected_ms):
    assert cpu7b.decode_seconds(batch, length) * 1000 == pytest.approx(expected_ms, rel=0.05)


# ----------------------------------------------------------------------
# Table I — 3rd-gen Xeon (no AMX): 6.7-7.3× prefill, 1.4-1.7× decode
# ----------------------------------------------------------------------
def test_gen3_prefill_slowdown_in_measured_band(cpu7b):
    gen3 = LatencyLaw(XEON_GEN3_32C, LLAMA2_7B)
    for length in (256, 1024, 4096):
        ratio = gen3.prefill_seconds(length) / cpu7b.prefill_seconds(length)
        assert 6.7 <= ratio <= 7.3


def test_gen3_1k_ttft_violates_slo():
    # §IV-A2: gen3 at 1K inputs → 4.1 s TTFT, "far exceeding the SLOs" (2 s).
    gen3 = LatencyLaw(XEON_GEN3_32C, LLAMA2_7B)
    assert gen3.prefill_seconds(1024) == pytest.approx(4.1, rel=0.1)
    assert gen3.prefill_seconds(1024) > ttft_slo(1024)


def test_gen3_decode_slowdown_in_measured_band(cpu7b):
    gen3 = LatencyLaw(XEON_GEN3_32C, LLAMA2_7B)
    for batch, length in ((1, 1024), (32, 1024), (1, 4096), (32, 4096)):
        ratio = gen3.decode_seconds(batch, length) / cpu7b.decode_seconds(batch, length)
        assert 1.3 <= ratio <= 1.8


# ----------------------------------------------------------------------
# Derived statements from the text
# ----------------------------------------------------------------------
def test_8b_decode_at_least_74ms():
    # §X: "decoding of Llama-3.1-8B takes at least 74 ms" on the CPU.
    law = LatencyLaw(XEON_GEN4_32C, LLAMA31_8B)
    assert law.decode_seconds(1, 1024) * 1000 == pytest.approx(74, rel=0.1)


def test_deepseek_7b_close_to_llama_7b():
    # §IX-A: same-scale models perform similarly (650 ms vs 567 ms TTFT,
    # 74 ms vs 71 ms TPOT at 1-batch 1K).
    deepseek = LatencyLaw(XEON_GEN4_32C, DEEPSEEK_QWEN_7B)
    llama = LatencyLaw(XEON_GEN4_32C, LLAMA2_7B)
    assert 1.0 < deepseek.prefill_seconds(1024) / llama.prefill_seconds(1024) < 1.3
    assert 1.0 <= deepseek.decode_seconds(1, 1024) / llama.decode_seconds(1, 1024) < 1.15


def test_cpu_13b_feasible_up_to_5_6k_inputs():
    # §IV-A2: CPUs handle "short inputs (≤5.6K for a 13B model)".
    law = LatencyLaw(XEON_GEN4_32C, LLAMA2_13B)
    assert law.prefill_seconds(5600) <= ttft_slo(5600)
    assert law.prefill_seconds(6400) > ttft_slo(6400)


def test_cpu_34b_misses_slo_even_short():
    # Fig. 6: C-34B sits above the SLO already at short lengths.
    law = LatencyLaw(XEON_GEN4_32C, CODELLAMA_34B)
    assert law.prefill_seconds(512) > ttft_slo(512)


def test_cpu_7b_8k_within_slo():
    # Fig. 6 / §IX-I1: ~8.4K is the CPU feasibility edge at the 8 s cap.
    law = LatencyLaw(XEON_GEN4_32C, LLAMA2_7B)
    assert law.prefill_seconds(8192) <= 8.0
    law8b = LatencyLaw(XEON_GEN4_32C, LLAMA31_8B)
    assert law8b.prefill_seconds(10000) > 8.0


# ----------------------------------------------------------------------
# GPU laws (Figs. 6-8 shape)
# ----------------------------------------------------------------------
def test_gpu_far_faster_than_cpu():
    cpu = LatencyLaw(XEON_GEN4_32C, LLAMA2_7B)
    gpu = LatencyLaw(A100_80GB, LLAMA2_7B)
    assert gpu.prefill_seconds(1024) < cpu.prefill_seconds(1024) / 5
    assert gpu.decode_seconds(1, 1024) < cpu.decode_seconds(1, 1024) / 3


def test_gpu_34b_prefill_within_slo_at_8k():
    # Fig. 6: G-34B stays under the SLO across all tested lengths.
    law = LatencyLaw(A100_80GB, CODELLAMA_34B)
    for length in (128, 512, 2048, 8192):
        assert law.prefill_seconds(length) <= ttft_slo(length)


def test_decode_time_grows_sublinearly_with_batch():
    # Fig. 7: "serving 7B on CPU at 1K, a 4-batch TPOT is only ~14% above 1-batch".
    law = LatencyLaw(XEON_GEN4_32C, LLAMA2_7B)
    ratio = law.decode_seconds(4, 1024) / law.decode_seconds(1, 1024)
    assert 1.05 < ratio < 1.25


def test_decode_time_doubles_with_length_at_32batch_13b():
    # Fig. 8: 13B 32-batch TPOT roughly doubles from 512 to 2K tokens.
    law = LatencyLaw(XEON_GEN4_32C, LLAMA2_13B)
    ratio = law.decode_seconds(32, 2048) / law.decode_seconds(32, 512)
    assert 1.6 < ratio < 2.4
    assert law.decode_seconds(32, 2048) > 0.25  # the 2K point violates SLO


def test_tensor_parallel_speeds_up_and_validates_degree():
    single = LatencyLaw(A100_80GB, CODELLAMA_34B, tp_degree=1)
    tp2 = LatencyLaw(A100_80GB, CODELLAMA_34B, tp_degree=2)
    assert tp2.prefill_seconds(1024) == pytest.approx(single.prefill_seconds(1024) / 1.7)
    with pytest.raises(ValueError):
        LatencyLaw(A100_80GB, CODELLAMA_34B, tp_degree=3)
    with pytest.raises(ValueError):
        LatencyLaw(XEON_GEN4_32C, LLAMA2_7B, tp_degree=2)


def test_invalid_inputs_rejected():
    law = LatencyLaw(XEON_GEN4_32C, LLAMA2_7B)
    with pytest.raises(ValueError):
        law.prefill_seconds(0)
    with pytest.raises(ValueError):
        law.decode_seconds(0, 100)
    with pytest.raises(ValueError):
        LatencyLaw(XEON_GEN4_32C, LLAMA2_7B, fraction=0.0)
