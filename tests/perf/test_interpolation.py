"""Tests for the §VI-B interpolation and profiler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import A100_80GB, XEON_GEN4_32C
from repro.models import LLAMA2_7B
from repro.perf import Interp1D, Interp2D, quantify
from repro.perf.laws import LatencyLaw


def test_interp1d_exact_at_sample_points():
    interp = Interp1D([1.0, 2.0, 4.0], [10.0, 20.0, 40.0])
    assert interp(2.0) == 20.0


def test_interp1d_linear_between_points():
    interp = Interp1D([0.0, 10.0], [0.0, 100.0])
    assert interp(2.5) == pytest.approx(25.0)


def test_interp1d_extrapolates_from_edge_segment():
    interp = Interp1D([0.0, 1.0, 2.0], [0.0, 1.0, 4.0])
    assert interp(3.0) == pytest.approx(7.0)  # slope of last segment = 3
    assert interp(-1.0) == pytest.approx(-1.0)  # slope of first segment = 1


def test_interp1d_validates_inputs():
    with pytest.raises(ValueError):
        Interp1D([1.0], [2.0])
    with pytest.raises(ValueError):
        Interp1D([1.0, 1.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        Interp1D([1.0, 2.0], [1.0])


def test_interp2d_bilinear():
    interp = Interp2D([0.0, 1.0], [0.0, 1.0], [[0.0, 1.0], [1.0, 2.0]])
    assert interp(0.5, 0.5) == pytest.approx(1.0)
    assert interp(0.0, 1.0) == pytest.approx(1.0)
    assert interp(1.0, 1.0) == pytest.approx(2.0)


def test_interp2d_validates_shape():
    with pytest.raises(ValueError):
        Interp2D([0.0, 1.0], [0.0, 1.0], [[0.0, 1.0]])


# ----------------------------------------------------------------------
# Profiler: the quantified estimates must track the ground truth within a
# few percent — the paper reports 5.9 % (TTFT) and 3.9 % (TPOT) deviations.
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(length=st.integers(min_value=16, max_value=4096))
def test_quantified_ttft_within_paper_error(length):
    law = LatencyLaw(XEON_GEN4_32C, LLAMA2_7B)
    perf = quantify(law)
    truth = law.prefill_seconds(length)
    assert perf.ttft_seconds(length) == pytest.approx(truth, rel=0.06)


@settings(max_examples=60, deadline=None)
@given(
    batch=st.integers(min_value=1, max_value=128),
    length=st.integers(min_value=16, max_value=4096),
)
def test_quantified_tpot_within_paper_error(batch, length):
    law = LatencyLaw(A100_80GB, LLAMA2_7B)
    perf = quantify(law)
    truth = law.decode_seconds(batch, length)
    assert perf.tpot_seconds(batch, length) == pytest.approx(truth, rel=0.05)


def test_quantified_overestimates_convex_prefill():
    # Linear interpolation of a convex function never underestimates
    # between sample points — a safety property the scheduler relies on.
    law = LatencyLaw(XEON_GEN4_32C, LLAMA2_7B)
    perf = quantify(law)
    # (Holds within the sampled range; beyond max_context extrapolation
    # can undershoot, but the profiler samples up to max_context.)
    for length in (300, 700, 1500, 3000, 4000):
        assert perf.ttft_seconds(length) >= law.prefill_seconds(length) * 0.999


def test_sample_count_is_logarithmic():
    # §VI-B: O(log L_max · log B_max) — "a few hundred samples".
    perf = quantify(LatencyLaw(XEON_GEN4_32C, LLAMA2_7B))
    assert perf.sample_count < 500


def test_tpot_rejects_nonpositive_batch():
    perf = quantify(LatencyLaw(XEON_GEN4_32C, LLAMA2_7B))
    with pytest.raises(ValueError):
        perf.tpot_seconds(0, 100)
