"""Tests for the host-CPU model behind Figs. 10, 11 and 28."""

import pytest

from repro.hardware import HostCpuModel


@pytest.fixture
def host():
    return HostCpuModel(host_cores=32)


def test_single_engine_uses_about_one_core(host):
    # Fig. 10: vLLM "never consumes more than one CPU core".
    usage = host.core_usage(1)
    assert 0.8 <= usage <= 1.1


def test_eight_colocated_instances_slightly_exceed_one_core(host):
    # Fig. 28: eight instances → "slightly exceeds one core".
    usage = host.core_usage(8)
    assert 1.0 < usage < 1.6


def test_usage_grows_slowly_with_colocation(host):
    deltas = [host.core_usage(n + 1) - host.core_usage(n) for n in range(1, 8)]
    assert all(d < 0.1 for d in deltas)


def test_zero_instances_zero_usage(host):
    assert host.core_usage(0) == 0.0


def test_stress_slowdown_is_about_4_percent_at_64_procs(host):
    # Fig. 11: 64 stress processes on 32 cores → ~4 % TPOT loss.
    assert host.stress_slowdown(64) == pytest.approx(1.04, abs=0.005)


def test_stress_slowdown_saturates(host):
    assert host.stress_slowdown(640) == host.stress_slowdown(64)


def test_stress_slowdown_monotone(host):
    values = [host.stress_slowdown(n) for n in (0, 4, 8, 16, 32, 64)]
    assert values == sorted(values)
    assert values[0] == 1.0


def test_harvestable_cores(host):
    # §IX-I3: ~31 of 32 cores are harvestable while a GPU engine serves.
    assert host.harvestable_cores(1) > 30.0
    assert host.harvestable_cores(8) > 29.0


def test_invalid_inputs_rejected(host):
    with pytest.raises(ValueError):
        host.core_usage(-1)
    with pytest.raises(ValueError):
        host.stress_slowdown(-1)
