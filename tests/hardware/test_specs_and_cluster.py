"""Tests for hardware specs, nodes, and cluster builders."""

import pytest

from repro.hardware import (
    A100_80GB,
    Cluster,
    HardwareKind,
    UnknownNodeError,
    V100_32GB,
    XEON_GEN3_32C,
    XEON_GEN4_32C,
    XEON_GEN6_96C,
    harvested_cpu,
    paper_testbed,
)

GIB = 1024**3

ALL_SPECS = (XEON_GEN4_32C, XEON_GEN3_32C, XEON_GEN6_96C, A100_80GB, V100_32GB)


def test_a100_has_80gb():
    assert A100_80GB.memory_bytes == 80 * GIB
    assert A100_80GB.is_gpu


def test_gen3_xeon_lacks_amx():
    assert not XEON_GEN3_32C.matrix_accelerated
    assert XEON_GEN3_32C.prefill_factor > 6


def test_gen6_xeon_is_faster():
    # §X: 297 vs 105 TFLOPS → prefill factor ≈ 0.35.
    assert XEON_GEN6_96C.prefill_factor == pytest.approx(105 / 297)


def test_loader_bandwidth_loads_7b_in_about_a_second():
    # §IX-A: "1 second to load a 7B model".
    from repro.models import LLAMA2_7B

    seconds = LLAMA2_7B.weight_bytes / A100_80GB.loader_bytes_per_s
    assert 0.7 < seconds < 1.2


def test_harvested_cpu_scales_prefill_linearly():
    half = harvested_cpu(16)
    assert half.cores == 16
    assert half.prefill_factor == pytest.approx(2.0)
    assert 1.5 < half.decode_factor < 2.0  # sub-linear decode scaling


def test_harvested_cpu_rejects_bad_cores():
    with pytest.raises(ValueError):
        harvested_cpu(0)


def test_with_cores_rejected_on_gpu():
    with pytest.raises(ValueError):
        A100_80GB.with_cores(8)


def test_paper_testbed_is_4_plus_4():
    cluster = paper_testbed()
    assert len(cluster.cpu_nodes) == 4
    assert len(cluster.gpu_nodes) == 4
    assert all(n.spec is XEON_GEN4_32C for n in cluster.cpu_nodes)


@pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
def test_spec_invariants(spec):
    """Every built-in spec is internally consistent."""
    assert spec.memory_bytes > 0
    assert spec.prefill_factor > 0 and spec.decode_factor > 0
    assert spec.loader_bytes_per_s > 0
    assert spec.host_cores > 0
    if spec.is_cpu:
        assert spec.cores > 0
        assert not spec.is_gpu
    else:
        assert spec.cores == 0  # the accelerator itself has no CPU cores
        assert spec.matrix_accelerated  # the AMX exclusion is CPU-only (§V)


def test_spec_names_are_unique():
    assert len({spec.name for spec in ALL_SPECS}) == len(ALL_SPECS)


def test_paper_testbed_memory_sizes():
    cluster = paper_testbed()
    assert all(node.memory_bytes == 256 * GIB for node in cluster.cpu_nodes)
    assert all(node.memory_bytes == 80 * GIB for node in cluster.gpu_nodes)


def test_paper_testbed_node_ids_are_unique():
    cluster = paper_testbed()
    ids = [node.node_id for node in cluster.nodes]
    assert len(set(ids)) == len(ids) == 8


def test_v100_is_a_slower_smaller_gpu():
    assert V100_32GB.is_gpu
    assert V100_32GB.memory_bytes < A100_80GB.memory_bytes
    assert V100_32GB.prefill_factor > A100_80GB.prefill_factor
    assert V100_32GB.decode_factor > A100_80GB.decode_factor
    assert V100_32GB.loader_bytes_per_s < A100_80GB.loader_bytes_per_s


def test_cluster_build_and_lookup():
    cluster = Cluster.build(1, 2)
    assert cluster.node("gpu-1").is_gpu
    with pytest.raises(KeyError):
        cluster.node("gpu-9")
    with pytest.raises(ValueError):
        Cluster.build(-1, 0)


def test_unknown_node_error_is_typed_and_keyerror_compatible():
    cluster = Cluster.build(1, 1)
    with pytest.raises(UnknownNodeError):
        cluster.node("nope")
    try:
        cluster.node("nope")
    except KeyError as error:  # the pre-topology contract
        assert "nope" in str(error)


def test_node_lookup_is_dict_indexed():
    cluster = Cluster.build(0, 3)
    assert cluster.topology._by_id["gpu-2"] is cluster.node("gpu-2")


def test_node_identity_semantics():
    cluster = Cluster.build(2, 0)
    assert cluster.node("cpu-0") == cluster.node("cpu-0")
    assert cluster.node("cpu-0") != cluster.node("cpu-1")
    assert len({cluster.node("cpu-0"), cluster.node("cpu-0")}) == 1


def test_kind_flags():
    cluster = Cluster.build(1, 1)
    assert cluster.cpu_nodes[0].kind is HardwareKind.CPU
    assert cluster.gpu_nodes[0].kind is HardwareKind.GPU
