"""Tests for the interconnect topology and bandwidth-contention model."""

import pytest

from repro.hardware import Cluster, Link, LinkKind, Node, Topology, UnknownNodeError
from repro.hardware.specs import A100_80GB, XEON_GEN4_32C
from repro.perf.loadtime import load_seconds, route_rate
from repro.sim.simulator import Simulator

GIB = 1024**3


def _gpu_nodes(n):
    return [Node(f"gpu-{i}", A100_80GB) for i in range(n)]


def _shared_link(bandwidth=1000.0, latency=0.0):
    return Link(
        link_id="l0",
        kind=LinkKind.NETWORK,
        bandwidth_bytes_per_s=bandwidth,
        latency_s=latency,
        shared=True,
    )


def _single_link_topology(link, n=3):
    nodes = _gpu_nodes(n)
    routes = {node.node_id: (link,) for node in nodes}
    return Topology(nodes, load_routes=routes, kv_routes=routes, name="test")


# ----------------------------------------------------------------------
# Links and construction
# ----------------------------------------------------------------------
def test_link_validation():
    with pytest.raises(ValueError):
        Link("bad", LinkKind.PCIE, bandwidth_bytes_per_s=0.0)
    with pytest.raises(ValueError):
        Link("bad", LinkKind.PCIE, bandwidth_bytes_per_s=1.0, latency_s=-1.0)


def test_links_compare_by_identity():
    a = _shared_link()
    b = _shared_link()
    assert a != b
    assert len({a, b}) == 2


def test_topology_rejects_duplicate_and_unrouted_nodes():
    nodes = [Node("n0", A100_80GB), Node("n0", A100_80GB)]
    link = _shared_link()
    with pytest.raises(ValueError, match="duplicate"):
        Topology(nodes, {"n0": (link,)}, {"n0": (link,)})
    with pytest.raises(ValueError, match="load route"):
        Topology([Node("n0", A100_80GB)], {}, {"n0": (link,)})


def test_unknown_node_is_typed_keyerror():
    topology = Topology.uniform(_gpu_nodes(1))
    with pytest.raises(UnknownNodeError):
        topology.node("gpu-9")
    with pytest.raises(KeyError):  # compat: the old contract still holds
        topology.node("gpu-9")
    with pytest.raises(UnknownNodeError):
        topology.load_route("gpu-9")


def test_uniform_topology_routes_and_sharing():
    topology = Topology.uniform(_gpu_nodes(2))
    assert not topology.has_shared_links
    (loader,) = topology.load_route("gpu-0")
    assert loader.kind is LinkKind.PCIE
    assert loader.bandwidth_bytes_per_s == A100_80GB.loader_bytes_per_s
    (nic,) = topology.kv_route("gpu-0")
    assert nic.kind is LinkKind.NETWORK
    assert topology.load_route("gpu-0") != topology.load_route("gpu-1")


def test_oversubscribed_nic_shares_one_uplink():
    topology = Topology.oversubscribed_nic(_gpu_nodes(3))
    assert topology.has_shared_links
    uplinks = {topology.load_route(f"gpu-{i}")[0] for i in range(3)}
    assert len(uplinks) == 1  # same contention domain
    assert topology.route_between("gpu-0", "gpu-1") == (next(iter(uplinks)),)


def test_nvlink_islands_group_gpus():
    nodes = [Node("cpu-0", XEON_GEN4_32C)] + _gpu_nodes(4)
    topology = Topology.nvlink_islands(nodes, island_size=2)
    assert topology.load_route("gpu-0") == topology.load_route("gpu-1")
    assert topology.load_route("gpu-2") != topology.load_route("gpu-1")
    assert topology.kv_route("gpu-0")[0].kind is LinkKind.NVLINK
    assert not topology.load_route("cpu-0")[0].shared


def test_cross_island_kv_routes_cross_the_spine():
    from repro.hardware import NETWORK_BYTES_PER_S

    topology = Topology.nvlink_islands(_gpu_nodes(4), island_size=2)
    # Intra-island stays on the fat local fabric...
    intra = topology.route_between("gpu-0", "gpu-1")
    assert [link.kind for link in intra] == [LinkKind.NVLINK]
    # ...while inter-island traffic pays the §IX-G network rate.
    inter = topology.route_between("gpu-0", "gpu-2")
    kinds = {link.kind for link in inter}
    assert LinkKind.NETWORK in kinds
    spine = next(link for link in inter if link.kind is LinkKind.NETWORK)
    assert spine.bandwidth_bytes_per_s == NETWORK_BYTES_PER_S
    # Egress with an unknown destination is charged the spine too.
    sim = Simulator()
    topology.bind(sim)
    transfer = topology.start_kv_transfer("gpu-0", None, 1.0)
    assert spine in transfer.route


# ----------------------------------------------------------------------
# The contention model
# ----------------------------------------------------------------------
def test_single_transfer_duration_is_bytes_over_bandwidth():
    sim = Simulator()
    topology = _single_link_topology(_shared_link(bandwidth=1000.0))
    topology.bind(sim)
    done = []
    topology.start_load("gpu-0", 500.0, on_complete=lambda: done.append(sim.now))
    sim.run()
    assert done == [0.5]


def test_n_transfers_on_one_link_each_observe_capacity_over_n():
    """The acceptance invariant: N concurrent streams share the capacity."""
    sim = Simulator()
    topology = _single_link_topology(_shared_link(bandwidth=1000.0))
    topology.bind(sim)
    done = {}
    for i in range(3):
        topology.start_load(
            f"gpu-{i}", 1000.0, on_complete=lambda i=i: done.setdefault(i, sim.now)
        )
    sim.run()
    # Three equal transfers at capacity/3 all complete at 3x the solo time.
    assert done == {0: pytest.approx(3.0), 1: pytest.approx(3.0), 2: pytest.approx(3.0)}


def test_piecewise_constant_retiming_matches_analytic_solution():
    sim = Simulator()
    link = _shared_link(bandwidth=1000.0)
    topology = _single_link_topology(link)
    topology.bind(sim)
    done = {}
    retimes = []
    first = topology.start_load(
        "gpu-0",
        1000.0,
        on_complete=lambda: done.setdefault("a", sim.now),
        on_retime=lambda eta: retimes.append(eta),
    )
    assert first.eta == pytest.approx(1.0)
    # Second transfer joins at t=0.5: A has 500 bytes left at 500 B/s.
    sim.schedule(
        0.5,
        lambda: topology.start_load(
            "gpu-1", 250.0, on_complete=lambda: done.setdefault("b", sim.now)
        ),
    )
    sim.run()
    # A: 500 bytes at full rate, then shares until B's 250 bytes land at
    # t = 0.5 + 250/500 = 1.0 (A has 250 left), then full rate again.
    assert done["b"] == pytest.approx(1.0)
    assert done["a"] == pytest.approx(1.25)
    # A was re-timed twice: slowed at t=0.5, sped up at t=1.0.
    assert retimes == [pytest.approx(1.5), pytest.approx(1.25)]


def test_dedicated_links_never_contend():
    sim = Simulator()
    topology = Topology.dedicated(_gpu_nodes(3))
    topology.bind(sim)
    expected = 1000.0 / A100_80GB.loader_bytes_per_s
    done = {}
    for i in range(3):
        topology.start_load(
            f"gpu-{i}", 1000.0, on_complete=lambda i=i: done.setdefault(i, sim.now)
        )
    sim.run()
    assert all(t == expected for t in done.values())


def test_unshared_link_gives_every_transfer_full_bandwidth():
    sim = Simulator()
    link = Link("l0", LinkKind.PCIE, bandwidth_bytes_per_s=1000.0, shared=False)
    topology = _single_link_topology(link)
    topology.bind(sim)
    done = {}
    for i in range(2):
        topology.start_load(
            f"gpu-{i}", 1000.0, on_complete=lambda i=i: done.setdefault(i, sim.now)
        )
    sim.run()
    assert done == {0: 1.0, 1: 1.0}


def test_tail_seconds_are_fixed_and_never_retimed():
    sim = Simulator()
    topology = _single_link_topology(_shared_link(bandwidth=1000.0))
    topology.bind(sim)
    done = {}
    topology.start_load(
        "gpu-0", 1000.0, tail_seconds=2.0, on_complete=lambda: done.setdefault("a", sim.now)
    )
    # Joins at t=1.0, when A's bytes are done and only its tail remains:
    # A's completion (t=3.0) must not move.
    sim.schedule(
        1.0,
        lambda: topology.start_load(
            "gpu-1", 500.0, on_complete=lambda: done.setdefault("b", sim.now)
        ),
    )
    sim.run()
    assert done["a"] == pytest.approx(3.0)
    assert done["b"] == pytest.approx(1.5)  # alone on the link again


def test_link_latency_adds_to_duration():
    sim = Simulator()
    topology = _single_link_topology(_shared_link(bandwidth=1000.0, latency=0.25))
    topology.bind(sim)
    done = []
    topology.start_load("gpu-0", 500.0, on_complete=lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(0.75)]


def test_retiming_preserves_the_latency_head():
    """A re-timed transfer must never finish earlier than it would alone:
    the pipe-fill latency is not byte progress and is not dropped."""
    sim = Simulator()
    topology = _single_link_topology(_shared_link(bandwidth=100.0, latency=1.0))
    topology.bind(sim)
    done = {}
    topology.start_load("gpu-0", 100.0, on_complete=lambda: done.setdefault("a", sim.now))
    # B joins at t=0.5, inside A's latency head: A has moved 0 bytes.
    sim.schedule(
        0.5,
        lambda: topology.start_load(
            "gpu-1", 25.0, on_complete=lambda: done.setdefault("b", sim.now)
        ),
    )
    sim.run()
    # B: head until 1.5, then 25 B at 50 B/s → 2.0.  A: head until 1.0,
    # 50 B/s until B lands at 2.0 (50 B done), full rate for the rest →
    # 2.5 — strictly later than its uncontended 2.0, never earlier.
    assert done["b"] == pytest.approx(2.0)
    assert done["a"] == pytest.approx(2.5)


def test_link_stats_accumulate_bytes_busy_and_concurrency():
    sim = Simulator()
    topology = _single_link_topology(_shared_link(bandwidth=1000.0))
    topology.bind(sim)
    for i in range(2):
        topology.start_load(f"gpu-{i}", 1000.0)
    sim.run()
    stats = topology.link_stats(sim.now)["l0"]
    assert stats["bytes"] == 2000.0
    assert stats["busy_seconds"] == pytest.approx(2.0)
    assert stats["transfers"] == 2
    assert stats["max_concurrent"] == 2
    assert stats["kind"] == "network"


def test_link_stats_clip_open_interval_without_closing_it():
    sim = Simulator()
    topology = _single_link_topology(_shared_link(bandwidth=1000.0))
    topology.bind(sim)
    topology.start_load("gpu-0", 1000.0)
    sim.run(until=0.25)
    first = topology.link_stats(sim.now)["l0"]["busy_seconds"]
    assert first == pytest.approx(0.25)
    sim.run()
    assert topology.link_stats(sim.now)["l0"]["busy_seconds"] == pytest.approx(1.0)


def test_inbound_pressure_counts_shared_links_only():
    sim = Simulator()
    shared = Topology.oversubscribed_nic(_gpu_nodes(2))
    shared.bind(sim)
    assert shared.inbound_pressure("gpu-0") == 0
    shared.start_load("gpu-1", 10 * GIB)
    assert shared.inbound_pressure("gpu-0") == 1  # same uplink
    dedicated = Topology.uniform(_gpu_nodes(2))
    dedicated.bind(sim)
    dedicated.start_load("gpu-1", 10 * GIB)
    assert dedicated.inbound_pressure("gpu-0") == 0
    assert dedicated.inbound_pressure("gpu-1") == 0


def test_start_requires_bound_tracker():
    topology = Topology.uniform(_gpu_nodes(1))
    with pytest.raises(RuntimeError, match="not bound"):
        topology.start_load("gpu-0", 1.0)


# ----------------------------------------------------------------------
# The load-time law (perf.loadtime)
# ----------------------------------------------------------------------
def test_load_law_reduces_to_flat_constant_on_idle_route():
    topology = Topology.uniform(_gpu_nodes(1))
    route = topology.load_route("gpu-0")
    weights = 14 * GIB
    assert load_seconds(weights, route) == weights / A100_80GB.loader_bytes_per_s


def test_load_law_consumes_active_counts_on_shared_links():
    link = _shared_link(bandwidth=1000.0)
    assert route_rate((link,)) == 1000.0
    assert route_rate((link,), {link: 3}) == 250.0  # joins 3 in-flight streams
    assert load_seconds(500.0, (link,), {link: 1}) == 1.0


def test_load_law_estimate_via_topology_tracks_contention():
    sim = Simulator()
    topology = Topology.oversubscribed_nic(
        _gpu_nodes(2), nic_bytes_per_s=1000.0, nic_latency_s=0.0
    )
    topology.bind(sim)
    idle = topology.estimate_load_seconds("gpu-0", 500.0)
    assert idle == pytest.approx(0.5)
    topology.start_load("gpu-1", 10_000.0)
    # The new load would join one in-flight stream: half the uplink.
    assert topology.estimate_load_seconds("gpu-0", 500.0) == pytest.approx(2 * idle)


def test_load_law_validation():
    link = _shared_link()
    with pytest.raises(ValueError):
        load_seconds(-1.0, (link,))
    with pytest.raises(ValueError):
        route_rate(())


# ----------------------------------------------------------------------
# Cluster facade
# ----------------------------------------------------------------------
def test_cluster_is_a_facade_over_its_topology():
    cluster = Cluster.build(1, 2)
    assert cluster.topology is not None
    assert cluster.topology.nodes == cluster.nodes
    assert cluster.node("gpu-1") is cluster.topology.node("gpu-1")
    with pytest.raises(UnknownNodeError):
        cluster.node("gpu-9")


def test_cluster_from_nodes_adopts_topology_node_set():
    nodes = _gpu_nodes(2)
    topology = Topology.oversubscribed_nic(nodes)
    cluster = Cluster.from_nodes(nodes, topology=topology)
    assert cluster.topology is topology
    assert cluster.nodes == nodes
