"""PrefixIndex: segment parsing, block keys, radix walks, LRU eviction."""

import pytest

from repro.engine.kvcache import KVCache
from repro.kv import BlockPool, PrefixIndex, block_key, parse_segments
from repro.models.catalog import LLAMA2_7B


def make_index(capacity_blocks: int = 64) -> PrefixIndex:
    kv = KVCache(model=LLAMA2_7B)
    kv.allocated_bytes = capacity_blocks * kv.block_bytes
    return PrefixIndex(BlockPool(kv=kv))


# ----------------------------------------------------------------------
# Segment paths and block keys
# ----------------------------------------------------------------------
def test_parse_segments_assigns_cumulative_offsets():
    assert parse_segments("sys:128/turn:64", 192) == (
        ("sys", 0, 128),
        ("turn", 128, 192),
    )


def test_parse_segments_allows_colons_inside_names():
    # Only the *last* colon separates name from length.
    assert parse_segments("m:0-sys:32", 32) == (("m:0-sys", 0, 32),)


@pytest.mark.parametrize(
    "prefix_id,prefix_len,message",
    [
        ("sys", 16, "malformed"),
        (":16", 16, "malformed"),
        ("sys:0", 0, "non-positive"),
        ("sys:17", 16, "covers 17"),
    ],
)
def test_parse_segments_rejects_bad_paths(prefix_id, prefix_len, message):
    with pytest.raises(ValueError, match=message):
        parse_segments(prefix_id, prefix_len)


def test_block_key_lists_overlapping_segments():
    segs = parse_segments("a:24/b:16/c:8", 48)
    assert block_key(segs, 0) == (("a", 0),)
    assert block_key(segs, 1) == (("a", 0), ("b", 24))  # a's tail + b's head
    assert block_key(segs, 2) == (("b", 24), ("c", 40))


# ----------------------------------------------------------------------
# Radix walks and insertion
# ----------------------------------------------------------------------
def test_walk_returns_longest_cached_chain():
    index = make_index()
    keys = [("k0",), ("k1",), ("k2",)]
    node = index.root
    for key in keys[:2]:
        node = index.extend(node, key)
    matched = index.walk(keys)
    assert [n.key for n in matched] == keys[:2]
    assert len(index) == 2


def test_extend_is_idempotent_per_key():
    index = make_index()
    first = index.extend(index.root, ("k",))
    again = index.extend(index.root, ("k",))
    assert first is again
    assert len(index) == 1


def test_diverges_mid_block_spots_partial_sibling():
    index = make_index()
    tail = index.extend(index.root, (("sys", 0),))
    # Cached continuation: sys's last block completed by session A's turn.
    index.extend(tail, (("sys", 0), ("s0", 520)))
    # Session B opens the same block with a different continuation: COW.
    assert index.diverges_mid_block(tail, ("sys", 0), (("sys", 0), ("s1", 520)))
    # Same full key is a plain hit, not a divergence.
    assert not index.diverges_mid_block(tail, ("sys", 0), (("sys", 0), ("s0", 520)))
    # A prompt ending mid-block (no full key) still diverges from the sibling.
    assert index.diverges_mid_block(tail, ("sys", 0), None)
    assert not index.diverges_mid_block(tail, None, None)


# ----------------------------------------------------------------------
# Eviction
# ----------------------------------------------------------------------
def test_evict_is_lru_over_unreferenced_leaves():
    index = make_index()
    pool = index.pool
    old = index.extend(index.root, ("old",))
    new = index.extend(index.root, ("new",))
    old.block.last_used = 1
    new.block.last_used = 2
    assert index.evict(1) == 1
    assert index.walk([("old",)]) == []  # the stale leaf went first
    assert [n.key for n in index.walk([("new",)])] == [("new",)]
    assert pool.allocated_blocks == 1


def test_evict_skips_referenced_leaves():
    index = make_index()
    leaf = index.extend(index.root, ("pinned",))
    index.pool.ref(leaf.block)
    assert index.evict(1) == 0
    assert len(index) == 1


def test_evict_cascades_through_exposed_parents():
    index = make_index()
    node = index.root
    for depth in range(3):
        node = index.extend(node, (f"d{depth}",))
    # Interior nodes are pinned by descendants; evicting 3 must peel the
    # chain leaf-first.
    assert index.evict(3) == 3
    assert len(index) == 0
    assert index.pool.allocated_blocks == 0


def test_evict_stops_at_referenced_interior():
    index = make_index()
    top = index.extend(index.root, ("top",))
    index.extend(top, ("mid",))
    index.pool.ref(top.block)
    assert index.evict(2) == 1  # the leaf goes; the referenced parent stays
    assert len(index) == 1


def test_clear_releases_everything():
    index = make_index()
    node = index.root
    for depth in range(4):
        node = index.extend(node, (f"d{depth}",))
    index.clear()
    assert len(index) == 0
    assert index.pool.allocated_blocks == 0
    assert index.walk([("d0",)]) == []
