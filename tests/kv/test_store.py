"""KvShareStore: the admit/commit/release lifecycle and supply accounting.

The store is driven here exactly as the serving system drives it —
enqueue on admit, move to the batch on commit, remove on release — so the
derived private-block accounting sees the same resident sets it would in
a run.
"""

from repro.engine.instance import Instance
from repro.engine.kvcache import BLOCK_TOKENS
from repro.engine.request import Request
from repro.hardware.node import Node
from repro.hardware.specs import A100_80GB
from repro.kv import KvShareStore
from repro.metrics.collector import MetricsCollector
from repro.models.catalog import LLAMA2_7B


def make_store(capacity_blocks: int = 256) -> KvShareStore:
    instance = Instance(
        inst_id=0, deployment="m", model=LLAMA2_7B, node=Node("gpu-0", A100_80GB)
    )
    instance.kv.allocated_bytes = capacity_blocks * instance.kv.block_bytes
    store = KvShareStore(instance, MetricsCollector())
    instance.kv_share = store
    return store


def make_request(
    req_id: int, input_len: int, prefix_id: str | None = None, prefix_len: int = 0
) -> Request:
    return Request(
        req_id=req_id,
        deployment="m",
        arrival=0.0,
        input_len=input_len,
        output_len=8,
        ttft_slo=10.0,
        tpot_slo=0.1,
        prefix_id=prefix_id,
        prefix_len=prefix_len,
    )


def run_lifecycle(store: KvShareStore, request: Request) -> None:
    """Dispatch + prefill-completion, as the serving system sequences it."""
    store.admit(request)
    store.instance.prefill_pending.append(request)
    store.commit(request)
    store.instance.prefill_pending.remove(request)
    store.instance.batch.append(request)


def finish(store: KvShareStore, request: Request) -> None:
    store.instance.batch.remove(request)
    store.release(request)


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
def test_first_request_misses_then_prefix_hits():
    store = make_store()
    sys_len = 8 * BLOCK_TOKENS
    first = make_request(1, sys_len + 40, "sys:128", sys_len)
    store.admit(first)
    assert first.shared_tokens == 0
    assert first.prefill_len == first.input_len  # full prefill on a miss
    store.instance.prefill_pending.append(first)
    store.commit(first)
    assert first.shared_tokens == sys_len  # promoted blocks now shared
    store.instance.prefill_pending.remove(first)
    store.instance.batch.append(first)

    second = make_request(2, sys_len + 24, "sys:128", sys_len)
    store.admit(second)
    assert second.shared_tokens == sys_len
    assert second.prefill_len == second.input_len - sys_len
    assert store.metrics.prefix_hit_tokens == sys_len
    assert store.metrics.prefix_lookups == 2


def test_probe_has_no_side_effects():
    store = make_store()
    first = make_request(1, 256, "sys:128", 128)
    run_lifecycle(store, first)
    before = store.pool.referenced_blocks
    probe_req = make_request(2, 256, "sys:128", 128)
    assert store.probe(probe_req) == 128
    assert store.pool.referenced_blocks == before
    assert probe_req.shared_tokens == 0


def test_release_keeps_blocks_cached_for_future_hits():
    store = make_store()
    first = make_request(1, 256, "sys:128", 128)
    run_lifecycle(store, first)
    finish(store, first)
    assert first.shared_tokens == 0
    assert store.pool.referenced_blocks == 0
    assert store.pool.cached_blocks == 128 // BLOCK_TOKENS
    # The cache still answers.
    late = make_request(2, 200, "sys:128", 128)
    store.admit(late)
    assert late.shared_tokens == 128


def test_release_is_idempotent():
    store = make_store()
    request = make_request(1, 256, "sys:128", 128)
    run_lifecycle(store, request)
    finish(store, request)
    store.release(request)  # no table entry left: a no-op
    store.check_invariants()


def test_sub_block_prefix_never_shares():
    store = make_store()
    short = make_request(1, 64, "sys:8", 8)  # below one block
    run_lifecycle(store, short)
    assert short.shared_tokens == 0
    assert store.pool.allocated_blocks == 0


def test_fully_shared_prompt_keeps_one_prefill_token():
    store = make_store()
    first = make_request(1, 128, "sys:128", 128)
    run_lifecycle(store, first)
    second = make_request(2, 128, "sys:128", 128)
    store.admit(second)
    assert second.shared_tokens == 128
    assert second.prefill_len == 1  # the batch-attach iteration survives


def test_agentic_turns_extend_the_same_path():
    store = make_store()
    turn1 = make_request(1, 520, "sys:520", 520)
    run_lifecycle(store, turn1)
    turn2 = make_request(2, 648, "sys:520/s0t1:128", 648)
    store.admit(turn2)
    # Turn 1 committed its 32 full blocks; turn 2 shares them all.
    assert turn2.shared_tokens == (520 // BLOCK_TOKENS) * BLOCK_TOKENS
    store.instance.prefill_pending.append(turn2)
    store.commit(turn2)
    assert turn2.shared_tokens == (648 // BLOCK_TOKENS) * BLOCK_TOKENS


def test_cow_counted_on_mid_block_divergence():
    store = make_store()
    a = make_request(1, 651, "sys:520/s0:131", 651)
    run_lifecycle(store, a)
    # Session B shares the unaligned seed but continues differently: the
    # block containing token 520 exists with A's continuation → COW.
    b = make_request(2, 660, "sys:520/s1:140", 660)
    store.admit(b)
    assert b.shared_tokens == (520 // BLOCK_TOKENS) * BLOCK_TOKENS
    assert store.metrics.cow_blocks == 1


# ----------------------------------------------------------------------
# Supply coupling
# ----------------------------------------------------------------------
def test_commit_evicts_lru_cache_under_pressure():
    store = make_store(capacity_blocks=8)
    cold = make_request(1, 4 * BLOCK_TOKENS, "old:64", 64)
    run_lifecycle(store, cold)
    finish(store, cold)  # 4 cached-unreferenced blocks
    hot = make_request(2, 7 * BLOCK_TOKENS, "new:112", 112)
    run_lifecycle(store, hot)
    # 7 private-then-promoted blocks only fit by reclaiming the old cache.
    assert hot.shared_tokens == 7 * BLOCK_TOKENS
    assert store.free_blocks() >= 0
    store.check_invariants()


def test_can_admit_vetoes_beyond_supply():
    store = make_store(capacity_blocks=8)
    resident = make_request(1, 6 * BLOCK_TOKENS, "sys:96", 96)
    run_lifecycle(store, resident)
    # 4 fresh blocks on top of 6 referenced ones exceed the 8-block pool.
    too_big = make_request(2, 4 * BLOCK_TOKENS)
    assert not store.can_admit(too_big)
    # A prefix twin needs only its private tail beyond the shared 6.
    twin = make_request(3, 7 * BLOCK_TOKENS, "sys:96", 96)
    assert store.can_admit(twin)


def test_can_admit_defers_on_cold_or_resizing_pool():
    store = make_store(capacity_blocks=0)
    request = make_request(1, 512)
    assert store.can_admit(request)  # still loading: sizing machinery decides
    store.instance.kv.allocated_bytes = store.instance.kv.block_bytes
    store.instance.kv.scaling_target_bytes = 4 * store.instance.kv.block_bytes
    assert store.can_admit(request)  # mid-resize: defer


def test_live_bytes_counts_shared_blocks_once():
    store = make_store()
    kv = store.instance.kv
    first = make_request(1, 256, "sys:256", 256)
    run_lifecycle(store, first)
    solo = store.instance.live_kv_bytes()
    assert solo == kv.used_bytes(256)
    second = make_request(2, 256, "sys:256", 256)
    store.admit(second)
    store.instance.prefill_pending.append(second)
    # The twin adds no private tail beyond the shared prefix: one block
    # chain, two references.
    assert store.instance.live_kv_bytes() == solo
    store.check_invariants()


def test_clear_forgets_tables_and_cache():
    store = make_store()
    request = make_request(1, 256, "sys:128", 128)
    run_lifecycle(store, request)
    store.instance.batch.remove(request)
    store.clear()
    assert store.pool.allocated_blocks == 0
    assert store.referenced_blocks == 0
    store.check_invariants()


def test_conservation_identity_through_a_mixed_history():
    # Sized above the ~80-block peak: the driver here never consults
    # can_admit, and the identity only holds for a non-oversubscribed pool.
    store = make_store(capacity_blocks=128)
    live: list[Request] = []
    for index in range(12):
        prefix = f"sys{index % 3}:128"
        request = make_request(index, 128 + 16 * index, prefix, 128)
        run_lifecycle(store, request)
        live.append(request)
        store.check_invariants()
        if index % 2:
            finish(store, live.pop(0))
            store.check_invariants()
    pool = store.pool
    assert (
        store.free_blocks() + pool.allocated_blocks + store.private_blocks()
        == pool.capacity_blocks
    )
