"""BlockPool: refcounted blocks, free-list recycling, capacity views."""

import pytest

from repro.engine.kvcache import KVCache
from repro.kv import BlockPool
from repro.models.catalog import LLAMA2_7B


@pytest.fixture
def pool() -> BlockPool:
    kv = KVCache(model=LLAMA2_7B)
    kv.allocated_bytes = 8 * kv.block_bytes
    return BlockPool(kv=kv)


def test_capacity_tracks_the_kv_cache(pool):
    assert pool.capacity_blocks == 8
    pool.kv.allocated_bytes = 3 * pool.kv.block_bytes
    assert pool.capacity_blocks == 3
    pool.kv.allocated_bytes = 0
    assert pool.capacity_blocks == 0


def test_alloc_assigns_fresh_then_recycled_ids(pool):
    a = pool.alloc(("a",))
    b = pool.alloc(("b",))
    assert (a.block_id, b.block_id) == (0, 1)
    pool.release(b)
    c = pool.alloc(("c",))
    assert c.block_id == 1  # recycled off the free list
    assert pool.allocated_blocks == 2


def test_release_requires_zero_refcount(pool):
    block = pool.alloc(("a",))
    pool.ref(block)
    with pytest.raises(RuntimeError, match="refcount"):
        pool.release(block)
    pool.unref(block)
    pool.release(block)
    assert pool.allocated_blocks == 0


def test_referenced_counts_distinct_blocks_not_references(pool):
    block = pool.alloc(("a",))
    other = pool.alloc(("b",))
    pool.ref(block)
    pool.ref(block)
    pool.ref(other)
    assert pool.referenced_blocks == 2
    assert pool.cached_blocks == 0
    pool.unref(block)
    assert pool.referenced_blocks == 2  # still one reference left
    pool.unref(block)
    assert pool.referenced_blocks == 1
    assert pool.cached_blocks == 1


def test_unref_below_zero_raises(pool):
    block = pool.alloc(("a",))
    with pytest.raises(RuntimeError, match="below zero"):
        pool.unref(block)


def test_check_invariants_catches_tampering(pool):
    block = pool.alloc(("a",))
    pool.check_invariants()
    pool.ref(block)
    pool.check_invariants()
    block.refcount = 0  # bypass unref: counter now disagrees
    with pytest.raises(AssertionError, match="recount"):
        pool.check_invariants()
