"""Calibration anchor for the prefix-sharing block map.

The shared-sysprompt scenario is the canonical prefix workload — every
request in a session train opens with the same system prompt — so a
healthy cache must convert most looked-up prefix tokens into hits.  The
anchor pins that end-to-end at bench scale (n_models=8): if a change to
admission, eviction, or the radix match drops the hit rate below one
half, this fails before the bench suite ever runs.
"""

from repro.runner import RunSpec, execute_spec

ANCHOR_SPEC = RunSpec(
    system="slinfer",
    scenario="shared-sysprompt",
    n_models=8,
    cluster="small",
    seed=3,
    scale="smoke",
    kv_sharing="on",
)


def test_shared_sysprompt_hit_rate_clears_anchor():
    report = execute_spec(ANCHOR_SPEC).report
    assert report.prefix_lookups > 0
    assert report.prefix_hit_rate > 0.5, (
        f"prefix hit rate {report.prefix_hit_rate:.3f} fell below the 0.5 anchor "
        f"({report.prefix_hit_tokens}/{report.prefix_lookup_tokens} tokens)"
    )
    # Sharing must also show up in block terms, not just token counts.
    assert report.shared_block_ratio > 0.0
    assert report.shared_block_refs > 0


def test_sharing_off_reports_no_kv_counters():
    off = execute_spec(
        RunSpec(
            system="slinfer",
            scenario="shared-sysprompt",
            n_models=2,
            cluster="small",
            seed=3,
            scale="smoke",
        )
    ).report
    assert off.prefix_lookups == 0
    assert off.prefix_hit_rate == 0.0
    assert "kv_sharing" not in off.to_dict()
