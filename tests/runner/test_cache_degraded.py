"""ResultCache degraded paths: corrupt entries, stale versions,
fingerprint echo mismatches, and mid-write failures must all degrade to
a miss (or a clean raise) — never to replaying a wrong result."""

import json

import pytest

from repro.runner import ResultCache, RunSpec, execute_spec
from repro.runner.cache import _repro_version
from repro.runner.spec import PAYLOAD_VERSION

SPEC = RunSpec(system="sllm", n_models=2, duration=60.0)


@pytest.fixture(scope="module")
def payload():
    return execute_spec(SPEC).to_payload()


def make_cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def test_missing_entry_is_a_miss(tmp_path):
    cache = make_cache(tmp_path)
    assert cache.get("0" * 64) is None
    assert cache.misses == 1 and cache.hits == 0


def test_round_trip_hit(tmp_path, payload):
    cache = make_cache(tmp_path)
    cache.put(payload["fingerprint"], payload)
    stored = cache.get(payload["fingerprint"])
    assert stored is not None
    # Compare through JSON: the disk round trip turns tuples into lists.
    assert stored["report"] == json.loads(json.dumps(payload))["report"]
    assert cache.hits == 1


def test_truncated_json_degrades_to_miss(tmp_path, payload):
    cache = make_cache(tmp_path)
    fingerprint = payload["fingerprint"]
    cache.put(fingerprint, payload)
    path = cache.path(fingerprint)
    path.write_text(path.read_text(encoding="utf-8")[: 50], encoding="utf-8")
    assert cache.get(fingerprint) is None
    assert cache.misses == 1


def test_fingerprint_echo_mismatch_is_a_miss(tmp_path, payload):
    cache = make_cache(tmp_path)
    other = "f" * 64
    # Store a payload whose embedded fingerprint disagrees with its key
    # (e.g. a renamed/copied cache file): it must not replay.
    cache.put(other, payload)
    assert cache.get(other) is None
    assert cache.misses == 1


def test_payload_version_mismatch_is_a_miss(tmp_path, payload):
    cache = make_cache(tmp_path)
    stale = {**payload, "version": PAYLOAD_VERSION + 1}
    cache.put(stale["fingerprint"], stale)
    assert cache.get(payload["fingerprint"]) is None


def test_repro_version_mismatch_is_a_miss(tmp_path, payload):
    cache = make_cache(tmp_path)
    fingerprint = payload["fingerprint"]
    cache.put(fingerprint, payload)
    entry = json.loads(cache.path(fingerprint).read_text(encoding="utf-8"))
    assert entry["repro_version"] == _repro_version()
    entry["repro_version"] = "0.0.0-stale"
    cache.path(fingerprint).write_text(json.dumps(entry), encoding="utf-8")
    assert cache.get(fingerprint) is None


def test_put_failure_mid_write_cleans_up_temp_file(tmp_path, payload):
    cache = make_cache(tmp_path)
    fingerprint = payload["fingerprint"]
    poisoned = {**payload, "unserializable": object()}
    with pytest.raises(TypeError):
        cache.put(fingerprint, poisoned)
    assert not cache.path(fingerprint).exists()
    assert list(cache.root.glob("*.tmp")) == [], "temp file leaked"
    # The cache stays usable after the failed write.
    cache.put(fingerprint, payload)
    assert cache.get(fingerprint) is not None
