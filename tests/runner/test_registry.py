"""Registry registration, lookup, and error behaviour."""

import pytest

from repro.registries import compile_brace_template
from repro.registry import (
    CLUSTERS,
    SCENARIOS,
    STANDARD_SYSTEMS,
    SYSTEMS,
    Registry,
    RegistryError,
    UnknownScenarioError,
    build_cluster,
    resolve_scenario,
    system_factory,
    systems_named,
)


def test_register_as_decorator_returns_the_function():
    reg = Registry("thing")

    @reg.register("alpha")
    def alpha():
        return 1

    assert alpha() == 1
    assert reg.get("alpha") is alpha
    assert "alpha" in reg


def test_register_direct_and_names_sorted():
    reg = Registry("thing")
    reg.register("b", object())
    reg.register("a", object())
    assert reg.names() == ["a", "b"]
    assert len(reg) == 2
    assert list(reg) == ["a", "b"]


def test_duplicate_registration_is_an_error():
    reg = Registry("thing")
    reg.register("x", 1)
    with pytest.raises(RegistryError, match="already registered"):
        reg.register("x", 2)


def test_unknown_lookup_lists_known_names():
    reg = Registry("gadget")
    reg.register("left", 1)
    reg.register("right", 2)
    with pytest.raises(RegistryError, match=r"unknown gadget 'middle' \(known: left, right\)"):
        reg.get("middle")


def test_builtin_systems_cover_the_paper():
    for name in ("sllm", "sllm+c", "sllm+c+s", "slinfer", "neo+", "pd-sllm", "pd-slinfer"):
        assert name in SYSTEMS
    assert set(STANDARD_SYSTEMS) <= set(SYSTEMS.names())


def test_builtin_scenarios_registered():
    for name in ("azure", "burstgpt", "diurnal", "bursty-spike", "mixed-fleet"):
        assert name in SCENARIOS


def test_system_factory_builds_named_system(small_cluster):
    system = system_factory("sllm+c+s")(small_cluster)
    assert system.name == "sllm+c+s"


def test_systems_named_pairs():
    pairs = systems_named("sllm", "slinfer")
    assert [name for name, _ in pairs] == ["sllm", "slinfer"]
    assert all(callable(factory) for _, factory in pairs)


def test_build_cluster_registered_and_pattern():
    paper = build_cluster("paper")
    assert len(paper.cpu_nodes) == 4 and len(paper.gpu_nodes) == 4
    assert "paper" in CLUSTERS
    adhoc = build_cluster("cpu1-gpu3")
    assert len(adhoc.cpu_nodes) == 1 and len(adhoc.gpu_nodes) == 3


def test_build_cluster_unknown_name():
    with pytest.raises(RegistryError, match="unknown cluster"):
        build_cluster("warehouse-scale")


# ----------------------------------------------------------------------
# Pattern resolution (the shared brace-template machinery)
# ----------------------------------------------------------------------
def test_compile_brace_template_matches_and_escapes():
    regex = compile_brace_template("cpu{N}-gpu{M}")
    match = regex.fullmatch("cpu4-gpu12")
    assert match and match.groupdict() == {"N": "4", "M": "12"}
    assert regex.fullmatch("cpu4-gpu12-extra") is None
    # Literal segments are escaped, not treated as regex.
    dotty = compile_brace_template("v1.{X}")
    assert dotty.fullmatch("v1x2") is None and dotty.fullmatch("v1.2")


def test_compile_brace_template_requires_a_placeholder():
    with pytest.raises(ValueError, match="placeholder"):
        compile_brace_template("static-name")


def test_register_pattern_resolves_with_int_params():
    reg = Registry("widget")
    reg.register("fixed", "FIXED")

    @reg.register_pattern("size{N}", summary="ad-hoc sizes")
    def _build(name, N):
        return f"{name}:{N * 2}"

    assert reg.resolve("fixed") == "FIXED"  # exact names win
    assert reg.resolve("size21") == "size21:42"
    assert reg.pattern_templates() == [("size{N}", "ad-hoc sizes")]


def test_resolve_unknown_raises_typed_error_listing_forms():
    reg = Registry("widget", unknown_error=UnknownScenarioError)
    reg.register("only", 1)
    reg.register_pattern("size{N}")(lambda name, N: N)
    with pytest.raises(UnknownScenarioError, match=r"only.*'size\{N\}'"):
        reg.resolve("missing")


def test_scenario_patterns_resolve_through_the_registry():
    factory = resolve_scenario("prefix-mix75")
    assert callable(factory)
    assert SCENARIOS.resolve("azure") is SCENARIOS.get("azure")
    with pytest.raises(UnknownScenarioError, match="unknown scenario"):
        resolve_scenario("prefix-blend50")


def test_cluster_patterns_enforce_bounds():
    harvest = build_cluster("harvest16")
    assert len(harvest.cpu_nodes) == 4 and len(harvest.gpu_nodes) == 4
    with pytest.raises(RegistryError, match="harvested cores"):
        build_cluster("harvest999")
