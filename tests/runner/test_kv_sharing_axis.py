"""The spec-level kv_sharing axis: serialization, fingerprints, grids.

Unlike the engine axis, kv_sharing changes *what* a run measures —
shared prompts prefill less and admit earlier — so "on" must fork the
fingerprint.  "off" is the pre-axis behaviour and serializes invisibly:
every payload and fingerprint minted before the axis existed keeps
loading and keeps naming the same cached result.
"""

from __future__ import annotations

import pytest

from repro.registry import RegistryError, resolve_scenario
from repro.runner import RunSpec, expand_grid


def _spec(**kwargs) -> RunSpec:
    return RunSpec(system="slinfer", scenario="azure", n_models=2, seed=1, **kwargs)


def test_off_mode_omitted_from_payload():
    assert "kv_sharing" not in _spec().to_dict()


def test_on_mode_round_trips():
    spec = _spec(kv_sharing="on")
    payload = spec.to_dict()
    assert payload["kv_sharing"] == "on"
    assert RunSpec.from_dict(payload) == spec
    assert RunSpec.from_dict(_spec().to_dict()).kv_sharing == "off"


def test_fingerprint_forks_when_sharing_is_on():
    # Sharing changes results, so on-mode runs must not collide with the
    # unshared cache entries...
    assert _spec().fingerprint() != _spec(kv_sharing="on").fingerprint()
    # ...while off-mode stays byte-identical with pre-axis fingerprints
    # (the field is absent from the hashed payload, not hashed as "off").
    assert "kv_sharing" not in _spec().to_dict()


def test_label_names_sharing_mode():
    assert "kv=on" in _spec(kv_sharing="on").label()
    assert "kv=" not in _spec().label()


def test_unknown_mode_rejected():
    with pytest.raises(ValueError, match="kv_sharing"):
        _spec(kv_sharing="sometimes")


def test_expand_grid_threads_kv_sharing():
    specs = expand_grid(["slinfer"], n_models=(2,), seeds=(1, 2), kv_sharing="on")
    assert specs
    assert all(spec.kv_sharing == "on" for spec in specs)


# ----------------------------------------------------------------------
# The prefix-mix{P} scenario pattern rides the same axis.
# ----------------------------------------------------------------------
def test_resolve_scenario_passes_through_registered_names():
    from repro.registry import SCENARIOS

    assert resolve_scenario("azure") is SCENARIOS.get("azure")


def test_resolve_scenario_parses_prefix_mix_percent():
    factory = resolve_scenario("prefix-mix75")
    assert factory.__name__ == "prefix_mix_75"


def test_prefix_mix_percent_sets_share():
    from repro.models import LLAMA2_7B

    full = resolve_scenario("prefix-mix100")(
        LLAMA2_7B, n_models=2, duration=60.0, requests_per_model=20, seed=7
    )
    none = resolve_scenario("prefix-mix0")(
        LLAMA2_7B, n_models=2, duration=60.0, requests_per_model=20, seed=7
    )
    assert all(request.prefix_id for request in full.requests)
    assert not any(request.prefix_id for request in none.requests)


def test_prefix_mix_percent_over_100_rejected():
    with pytest.raises(RegistryError, match="0..100"):
        resolve_scenario("prefix-mix101")


def test_unknown_scenario_rejected_with_known_names():
    with pytest.raises(RegistryError, match="prefix-mix"):
        resolve_scenario("no-such-scenario")
