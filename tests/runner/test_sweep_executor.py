"""Sweep execution: determinism, parallelism, and the result cache."""

import json

import pytest

from repro.runner import (
    ResultCache,
    RunResult,
    RunSpec,
    SweepExecutor,
    execute_spec,
    expand_grid,
)

# Tiny but non-trivial: a few dozen requests per spec.
TINY = dict(n_models=2, duration=60.0)


def tiny_grid():
    return expand_grid(["sllm", "slinfer"], seeds=[1, 2], duration=60.0, n_models=[2])


def test_execute_spec_reports_timing_envelope():
    result = execute_spec(RunSpec(system="sllm", **TINY))
    assert result.fingerprint == result.spec.fingerprint()
    assert result.wall_seconds > 0.0
    assert result.report.events_processed > 0
    assert result.report.wall_seconds > 0.0
    assert "ev/s" in result.report.timing_line()


def test_result_payload_round_trip_is_canonical():
    result = execute_spec(RunSpec(system="sllm", **TINY))
    restored = RunResult.from_payload(result.to_payload())
    assert restored.canonical_json() == result.canonical_json()
    assert restored.report.slo_met_count == result.report.slo_met_count
    assert restored.report.total_requests == result.report.total_requests


def test_sequential_and_parallel_sweeps_identical():
    specs = tiny_grid()
    sequential = SweepExecutor(workers=1).run(specs)
    parallel = SweepExecutor(workers=4).run(specs)
    assert len(sequential) == len(parallel) == len(specs)
    for seq, par in zip(sequential, parallel):
        assert seq.spec == par.spec
        assert seq.canonical_json() == par.canonical_json()


def test_results_keep_spec_order():
    specs = tiny_grid()
    results = SweepExecutor(workers=2).run(specs)
    assert [r.spec for r in results] == specs


# ----------------------------------------------------------------------
# Streaming-mode sweeps and shard merging
# ----------------------------------------------------------------------
def shard_specs():
    return [
        RunSpec(system="slinfer", seed=seed, metrics="streaming", **TINY)
        for seed in (1, 2, 3)
    ]


def test_streaming_specs_fingerprint_separately_and_round_trip():
    exact = RunSpec(system="slinfer", **TINY)
    streaming = RunSpec(system="slinfer", metrics="streaming", **TINY)
    assert exact.fingerprint() != streaming.fingerprint()
    # The default mode serializes exactly as before the field existed.
    assert "metrics" not in exact.to_dict()
    assert RunSpec.from_dict(streaming.to_dict()) == streaming
    assert "metrics=streaming" in streaming.label()


def test_streaming_sweep_parallel_matches_sequential():
    specs = shard_specs()
    sequential = SweepExecutor(workers=1).run(specs)
    parallel = SweepExecutor(workers=3).run(specs)
    for seq, par in zip(sequential, parallel):
        assert seq.canonical_json() == par.canonical_json()
    assert all(r.report.metrics_mode == "streaming" for r in sequential)


def test_run_merged_folds_streaming_shards():
    executor = SweepExecutor(workers=1)
    results, merged = executor.run_merged(shard_specs())
    assert merged.metrics_mode == "streaming"
    assert merged.total_requests == sum(r.report.total_requests for r in results)
    assert merged.events_processed == sum(r.report.events_processed for r in results)
    assert merged.duration == pytest.approx(sum(r.report.duration for r in results))
    assert len(merged.ttft_cdf()) == sum(len(r.report.ttft_cdf()) for r in results)
    assert merged.requests == []  # still bounded: no per-request state


def test_shard_merge_is_associative():
    from repro.metrics.report import merge_run_reports

    reports = [execute_spec(spec).report for spec in shard_specs()]
    a, b, c = reports
    left = merge_run_reports([merge_run_reports([a, b]), c])
    right = merge_run_reports([a, merge_run_reports([b, c])])
    # Integer state is bit-identical under any grouping; float sums
    # agree to rounding.
    assert left.ttft_cdf().to_dict()["bins"] == right.ttft_cdf().to_dict()["bins"]
    assert left.total_requests == right.total_requests
    assert left.batch_histogram == right.batch_histogram
    assert left.node_seconds_cpu == pytest.approx(right.node_seconds_cpu, rel=1e-12)
    assert left.ttft_cdf().percentile(90.0) == right.ttft_cdf().percentile(90.0)


def test_merge_rejects_mixed_modes():
    from repro.metrics.report import merge_run_reports

    exact = execute_spec(RunSpec(system="slinfer", **TINY)).report
    streaming = execute_spec(
        RunSpec(system="slinfer", metrics="streaming", **TINY)
    ).report
    with pytest.raises(ValueError, match="mixed"):
        merge_run_reports([exact, streaming])


def test_cache_hit_miss_and_equality(tmp_path):
    specs = tiny_grid()[:2]
    cache = ResultCache(tmp_path / "cache")
    executor = SweepExecutor(workers=1, cache=cache)

    first = executor.run(specs)
    assert all(not r.from_cache for r in first)
    assert cache.misses == len(specs)

    second = executor.run(specs)
    assert all(r.from_cache for r in second)
    assert cache.hits == len(specs)
    for a, b in zip(first, second):
        assert a.canonical_json() == b.canonical_json()

    # A different seed is a different fingerprint: miss, not a stale hit.
    other = executor.run([RunSpec(system="sllm", seed=99, **TINY)])
    assert not other[0].from_cache


def test_cache_invalidated_by_repro_version(tmp_path):
    cache = ResultCache(tmp_path)
    spec = RunSpec(system="sllm", **TINY)
    SweepExecutor(workers=1, cache=cache).run([spec])
    path = cache.path(spec.fingerprint())
    payload = json.loads(path.read_text(encoding="utf-8"))
    payload["repro_version"] = "0.0.0"
    path.write_text(json.dumps(payload), encoding="utf-8")
    # Simulator-version drift must re-simulate, never replay stale results.
    results = SweepExecutor(workers=1, cache=cache).run([spec])
    assert not results[0].from_cache


def test_round_trip_restores_timing_envelope():
    result = execute_spec(RunSpec(system="slinfer", **TINY))
    restored = RunResult.from_payload(result.to_payload())
    assert restored.report.wall_seconds == result.report.wall_seconds
    assert restored.report.overhead_stats == result.report.overhead_stats
    assert restored.report.overhead_stats  # slinfer measures placement et al.


def test_unknown_scale_label_is_an_error():
    with pytest.raises(KeyError, match="unknown scale"):
        RunSpec(system="sllm", scale="fulll").resolved_duration()


def test_cache_ignores_corrupt_entries(tmp_path):
    cache = ResultCache(tmp_path)
    spec = RunSpec(system="sllm", **TINY)
    cache.path(spec.fingerprint()).parent.mkdir(parents=True, exist_ok=True)
    cache.path(spec.fingerprint()).write_text("not json {", encoding="utf-8")
    assert cache.get(spec.fingerprint()) is None

    # Valid JSON with the wrong fingerprint echo is also a miss.
    wrong = {"version": 1, "fingerprint": "deadbeef", "spec": {}, "report": {}, "timing": {}}
    cache.path(spec.fingerprint()).write_text(json.dumps(wrong), encoding="utf-8")
    assert cache.get(spec.fingerprint()) is None


def test_cached_result_skips_simulation(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    spec = RunSpec(system="sllm", **TINY)
    SweepExecutor(workers=1, cache=cache).run([spec])

    import repro.runner.executor as executor_module

    def boom(*_args, **_kwargs):  # pragma: no cover - must not run
        raise AssertionError("cache hit should not re-simulate")

    monkeypatch.setattr(executor_module, "execute_spec", boom)
    results = SweepExecutor(workers=1, cache=cache).run([spec])
    assert results[0].from_cache


def test_workers_env_default(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert SweepExecutor().workers == 3
    monkeypatch.setenv("REPRO_WORKERS", "junk")
    assert SweepExecutor().workers == 1
    monkeypatch.delenv("REPRO_WORKERS")
    assert SweepExecutor().workers == 1


def test_system_kwargs_pass_through():
    from repro.core import SlinferConfig

    result = execute_spec(
        RunSpec(system="slinfer", **TINY),
        config=SlinferConfig(keepalive=4.0),
    )
    assert result.report.system == "slinfer"
