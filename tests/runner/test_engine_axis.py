"""The spec-level engine axis: serialization, fingerprints, grids.

The contract (see ``RunSpec.engine``): backends are byte-identical, so
the engine names *how* a spec runs, never *what* it measures — the
default serializes invisibly (old payloads keep loading) and the
fingerprint ignores the axis entirely (one cache entry serves both
backends).
"""

from __future__ import annotations

import pytest

from repro.runner import RunSpec, expand_grid


def _spec(**kwargs) -> RunSpec:
    return RunSpec(system="slinfer", scenario="azure", n_models=2, seed=1, **kwargs)


def test_reference_engine_omitted_from_payload():
    assert "engine" not in _spec().to_dict()


def test_vectorized_engine_round_trips():
    spec = _spec(engine="vectorized")
    payload = spec.to_dict()
    assert payload["engine"] == "vectorized"
    assert RunSpec.from_dict(payload) == spec
    assert RunSpec.from_dict(_spec().to_dict()).engine == "reference"


def test_fingerprint_is_engine_independent():
    # Byte-identical backends share cache entries: pinning the engine
    # must not fork (or invalidate) previously computed results.
    assert _spec().fingerprint() == _spec(engine="vectorized").fingerprint()


def test_label_names_non_default_engine():
    assert "engine=vectorized" in _spec(engine="vectorized").label()
    assert "engine=" not in _spec().label()


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown engine"):
        _spec(engine="warp-drive")


def test_expand_grid_threads_engine():
    specs = expand_grid(["slinfer"], n_models=(2,), seeds=(1, 2), engine="vectorized")
    assert specs
    assert all(spec.engine == "vectorized" for spec in specs)
