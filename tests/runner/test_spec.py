"""RunSpec identity, grids, and workload materialization."""

import pytest

from repro.runner import (
    RunSpec,
    build_workload,
    expand_grid,
    expand_policy_grid,
    get_scale,
)


def test_fingerprint_stable_and_sensitive():
    spec = RunSpec(system="sllm", seed=1)
    assert spec.fingerprint() == RunSpec(system="sllm", seed=1).fingerprint()
    assert spec.fingerprint() != RunSpec(system="sllm", seed=2).fingerprint()
    assert spec.fingerprint() != RunSpec(system="slinfer", seed=1).fingerprint()
    assert (
        spec.fingerprint()
        != RunSpec(system="sllm", seed=1, scenario_params={"dataset": "sharegpt"}).fingerprint()
    )


def test_scenario_params_normalized_from_dict():
    a = RunSpec(system="sllm", scenario_params={"b": 2, "a": 1})
    b = RunSpec(system="sllm", scenario_params=(("a", 1), ("b", 2)))
    assert a == b
    assert a.fingerprint() == b.fingerprint()
    assert a.params_dict() == {"a": 1, "b": 2}


def test_spec_dict_round_trip():
    spec = RunSpec(
        system="slinfer",
        scenario="mixed-fleet",
        n_models=12,
        cluster="cpu2-gpu2",
        seed=7,
        duration=120.0,
        scenario_params={"ratio": (4, 1, 1, 1)},
    )
    assert RunSpec.from_dict(spec.to_dict()) == spec


def test_resolved_duration_prefers_override():
    assert RunSpec(system="sllm", scale="smoke").resolved_duration() == get_scale("smoke").duration
    assert RunSpec(system="sllm", scale="smoke", duration=42.0).resolved_duration() == 42.0


def test_resolved_requests_per_model_is_rate_preserving():
    half_hour = RunSpec(system="sllm", duration=1800.0)
    tenth = RunSpec(system="sllm", duration=180.0)
    assert half_hour.resolved_requests_per_model() == pytest.approx(73.0)
    assert tenth.resolved_requests_per_model() == pytest.approx(7.3)


def test_expand_grid_cross_product_order():
    specs = expand_grid(
        ["sllm", "slinfer"],
        scenarios=["azure", "diurnal"],
        seeds=[1, 2],
        scale="smoke",
    )
    assert len(specs) == 8
    # Workload axes outermost, systems innermost.
    assert [(s.scenario, s.seed, s.system) for s in specs[:4]] == [
        ("azure", 1, "sllm"),
        ("azure", 1, "slinfer"),
        ("azure", 2, "sllm"),
        ("azure", 2, "slinfer"),
    ]
    assert {s.scenario for s in specs[4:]} == {"diurnal"}
    assert all(s.scale == "smoke" for s in specs)


def test_build_workload_respects_spec():
    spec = RunSpec(system="sllm", scenario="azure", n_models=4, duration=60.0, seed=5)
    workload = build_workload(spec)
    assert len(workload.deployments) == 4
    assert workload.duration == 60.0
    # Same spec -> identical workload; different seed -> different trace.
    again = build_workload(spec)
    assert [r.arrival for r in workload.requests] == [r.arrival for r in again.requests]


def test_build_workload_unknown_scenario():
    with pytest.raises(KeyError):
        build_workload(RunSpec(system="sllm", scenario="no-such-trace"))


# ----------------------------------------------------------------------
# Policy overrides
# ----------------------------------------------------------------------
def test_policy_overrides_fold_into_fingerprint():
    plain = RunSpec(system="slinfer")
    ablated = RunSpec(system="slinfer", policy_overrides={"reclaim": "never"})
    other = RunSpec(system="slinfer", policy_overrides={"reclaim": "eager"})
    assert plain.fingerprint() != ablated.fingerprint()
    assert ablated.fingerprint() != other.fingerprint()


def test_empty_overrides_keep_pre_policy_fingerprints():
    # Specs without overrides serialize exactly as before the policy
    # redesign, so cached results stay addressable.
    spec = RunSpec(system="sllm", seed=1)
    assert "policy_overrides" not in spec.to_dict()
    assert spec == RunSpec(system="sllm", seed=1, policy_overrides=())


def test_policy_overrides_normalized_and_round_tripped():
    a = RunSpec(system="slinfer", policy_overrides={"work": "cpu-assist:16", "reclaim": "never"})
    b = RunSpec(
        system="slinfer",
        policy_overrides=(("reclaim", "never"), ("work", "cpu-assist:16")),
    )
    assert a == b
    assert RunSpec.from_dict(a.to_dict()) == a
    assert "[reclaim=never,work=cpu-assist:16]" in a.label()


def test_expand_policy_grid_cross_product():
    combos = expand_policy_grid(
        {"placement": ["slinfer", "sllm"], "reclaim": ["keepalive", "never"]}
    )
    assert len(combos) == 4
    assert combos[0] == (("placement", "slinfer"), ("reclaim", "keepalive"))
    assert combos[-1] == (("placement", "sllm"), ("reclaim", "never"))
    assert expand_policy_grid(None) == [()]


def test_expand_grid_with_policy_axis():
    specs = expand_grid(
        ["slinfer"],
        seeds=[1, 2],
        scale="smoke",
        policies={"reclaim": ["keepalive", "never"]},
    )
    assert len(specs) == 4
    assert [s.policy_overrides for s in specs[:2]] == [
        (("reclaim", "keepalive"),),
        (("reclaim", "never"),),
    ]
    assert len({s.fingerprint() for s in specs}) == 4


def test_execute_spec_applies_policy_overrides():
    from repro.runner import execute_spec

    spec = RunSpec(
        system="sllm",
        n_models=2,
        cluster="cpu0-gpu1",
        seed=1,
        duration=30.0,
        policy_overrides={"reclaim": "never"},
    )
    result = execute_spec(spec)
    assert result.report.system == "sllm[reclaim=never]"
