"""RunSpec identity, grids, and workload materialization."""

import pytest

from repro.runner import RunSpec, build_workload, expand_grid, get_scale


def test_fingerprint_stable_and_sensitive():
    spec = RunSpec(system="sllm", seed=1)
    assert spec.fingerprint() == RunSpec(system="sllm", seed=1).fingerprint()
    assert spec.fingerprint() != RunSpec(system="sllm", seed=2).fingerprint()
    assert spec.fingerprint() != RunSpec(system="slinfer", seed=1).fingerprint()
    assert (
        spec.fingerprint()
        != RunSpec(system="sllm", seed=1, scenario_params={"dataset": "sharegpt"}).fingerprint()
    )


def test_scenario_params_normalized_from_dict():
    a = RunSpec(system="sllm", scenario_params={"b": 2, "a": 1})
    b = RunSpec(system="sllm", scenario_params=(("a", 1), ("b", 2)))
    assert a == b
    assert a.fingerprint() == b.fingerprint()
    assert a.params_dict() == {"a": 1, "b": 2}


def test_spec_dict_round_trip():
    spec = RunSpec(
        system="slinfer",
        scenario="mixed-fleet",
        n_models=12,
        cluster="cpu2-gpu2",
        seed=7,
        duration=120.0,
        scenario_params={"ratio": (4, 1, 1, 1)},
    )
    assert RunSpec.from_dict(spec.to_dict()) == spec


def test_resolved_duration_prefers_override():
    assert RunSpec(system="sllm", scale="smoke").resolved_duration() == get_scale("smoke").duration
    assert RunSpec(system="sllm", scale="smoke", duration=42.0).resolved_duration() == 42.0


def test_resolved_requests_per_model_is_rate_preserving():
    half_hour = RunSpec(system="sllm", duration=1800.0)
    tenth = RunSpec(system="sllm", duration=180.0)
    assert half_hour.resolved_requests_per_model() == pytest.approx(73.0)
    assert tenth.resolved_requests_per_model() == pytest.approx(7.3)


def test_expand_grid_cross_product_order():
    specs = expand_grid(
        ["sllm", "slinfer"],
        scenarios=["azure", "diurnal"],
        seeds=[1, 2],
        scale="smoke",
    )
    assert len(specs) == 8
    # Workload axes outermost, systems innermost.
    assert [(s.scenario, s.seed, s.system) for s in specs[:4]] == [
        ("azure", 1, "sllm"),
        ("azure", 1, "slinfer"),
        ("azure", 2, "sllm"),
        ("azure", 2, "slinfer"),
    ]
    assert {s.scenario for s in specs[4:]} == {"diurnal"}
    assert all(s.scale == "smoke" for s in specs)


def test_build_workload_respects_spec():
    spec = RunSpec(system="sllm", scenario="azure", n_models=4, duration=60.0, seed=5)
    workload = build_workload(spec)
    assert len(workload.deployments) == 4
    assert workload.duration == 60.0
    # Same spec -> identical workload; different seed -> different trace.
    again = build_workload(spec)
    assert [r.arrival for r in workload.requests] == [r.arrival for r in again.requests]


def test_build_workload_unknown_scenario():
    with pytest.raises(KeyError):
        build_workload(RunSpec(system="sllm", scenario="no-such-trace"))
