"""Mini scenario fuzzer: conservation holds under any random fleet.

Seeded-random sweep over small (scenario, shard count, router, seed)
configurations, every one executed through the federation under the
suite-wide ``REPRO_AUDIT=1`` (see ``tests/conftest.py``), so each shard
re-proves the runtime conservation audits (arrivals = completed +
dropped + in-flight, KV block accounting) at finalize.  On top of the
per-shard audits, the fuzzer asserts the *cross-shard* invariants the
audits cannot see:

* no request invented or lost by partitioning/routing — shard totals
  sum to the unsharded trace length;
* the merged report's counters fold exactly (completions and drops sum
  across shards, and never exceed the arrivals);
* per-shard deployments stay disjoint under static routers.

Randomness is a seeded ``numpy`` generator: deterministic trial IDs,
no external fuzzing deps.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.federation.runner import run_federation
from repro.runner import RunSpec, build_workload

TRIALS = 6

_SCENARIO_POOL = ("azure", "global-storm", "fleet-diurnal-week", "bursty-spike")
_ROUTER_POOL = ("fleet", "sticky", "balanced")


def _random_config(trial: int) -> RunSpec:
    rng = np.random.default_rng(7000 + trial)
    scenario = _SCENARIO_POOL[int(rng.integers(0, len(_SCENARIO_POOL)))]
    shards = int(rng.choice([2, 3, 4]))
    router = _ROUTER_POOL[int(rng.integers(0, len(_ROUTER_POOL)))]
    return RunSpec(
        system="slinfer",
        scenario=scenario,
        n_models=int(rng.choice([2, 4, 6])),
        cluster="cpu1-gpu1",
        seed=int(rng.integers(1, 1000)),
        scale="smoke",
        federation=f"{router}{shards}",
    )


@pytest.mark.parametrize("trial", range(TRIALS))
def test_random_fleet_conserves_requests(trial):
    spec = _random_config(trial)
    trace = build_workload(RunSpec.from_dict({**spec.to_dict(), "federation": None}))
    outcome = run_federation(spec, workers=1)

    shard_totals = [report.total_requests for report in outcome.shard_reports]
    assert sum(shard_totals) == trace.total_requests
    assert outcome.report.total_requests == trace.total_requests

    completed = sum(report.completed_count for report in outcome.shard_reports)
    dropped = sum(report.dropped_count for report in outcome.shard_reports)
    assert outcome.report.completed_count == completed
    assert outcome.report.dropped_count == dropped
    assert completed + dropped <= trace.total_requests

    for report in outcome.shard_reports:
        assert report.completed_count + report.dropped_count <= report.total_requests


@pytest.mark.parametrize("trial", range(TRIALS))
def test_random_fleet_is_deterministic(trial):
    """The fuzzer re-runs each random config once: same spec, same
    counters — determinism is not limited to the curated specs."""
    spec = _random_config(trial)
    first = run_federation(spec, workers=1)
    second = run_federation(spec, workers=1)
    assert first.report.events_processed == second.report.events_processed
    assert first.report.completed_count == second.report.completed_count
    assert first.report.dropped_count == second.report.dropped_count
