"""Determinism, worker-invariance, and spec contracts of the federation.

The conservative time-window runner promises that a federated run is a
pure function of its spec: repetitions are byte-identical, the host
layout (``workers=1`` in-process vs. pipe-connected worker processes)
is unobservable in the results, and the dynamic router's epoch ladder
is reproducible including its KV-migration count.
"""

from __future__ import annotations

import json

import pytest

from repro.federation.router import StickySessionRouter, deployment_hash, make_router
from repro.federation.runner import run_federation
from repro.federation.spec import FEDERATIONS, Federation, FederationError, resolve_federation
from repro.runner import RunSpec, build_workload, execute_spec


def _spec(federation: str, scenario: str = "global-storm", **kwargs) -> RunSpec:
    axes = dict(
        system="slinfer",
        scenario=scenario,
        n_models=4,
        cluster="cpu2-gpu2",
        seed=1,
        scale="smoke",
        federation=federation,
    )
    axes.update(kwargs)
    return RunSpec(**axes)


def _canonical(report) -> str:
    return json.dumps(report.to_dict(include_volatile=False), sort_keys=True)


# ----------------------------------------------------------------------
# Determinism and worker invariance
# ----------------------------------------------------------------------
def test_sharded_run_byte_identical_across_repeats():
    first = run_federation(_spec("sticky4"), workers=1)
    second = run_federation(_spec("sticky4"), workers=1)
    assert first.report.events_processed == second.report.events_processed
    assert _canonical(first.report) == _canonical(second.report)


@pytest.mark.parametrize("federation", ["sticky4", "balanced4"])
def test_results_independent_of_worker_count(federation):
    """One in-process host and four pipe-connected subprocesses must
    produce the same merged report — the host layout is transport, not
    semantics (static and dynamic sync paths alike)."""
    inproc = run_federation(_spec(federation), workers=1)
    piped = run_federation(_spec(federation), workers=4)
    assert piped.processes > 1  # really exercised the subprocess hosts
    assert _canonical(inproc.report) == _canonical(piped.report)
    assert inproc.kv_migrations == piped.kv_migrations
    assert inproc.epochs == piped.epochs


def test_dynamic_router_epochs_and_migrations_deterministic():
    outcome = run_federation(_spec("balanced4"), workers=1)
    again = run_federation(_spec("balanced4"), workers=1)
    assert outcome.epochs > 1  # the epoch ladder actually ran
    assert outcome.epochs == again.epochs
    assert outcome.kv_migrations == again.kv_migrations
    assert _canonical(outcome.report) == _canonical(again.report)


def test_shard_partition_conserves_the_trace():
    """Static sharding is a partition: every trace request lands on
    exactly one shard, none invented, none lost."""
    spec = _spec("sticky4")
    workload = build_workload(RunSpec.from_dict({**spec.to_dict(), "federation": None}))
    outcome = run_federation(spec, workers=1)
    assert sum(r.total_requests for r in outcome.shard_reports) == workload.total_requests
    assert outcome.report.total_requests == workload.total_requests


def test_stream_ingest_matches_materialized():
    a = run_federation(_spec("sticky2"), workers=1, ingest="materialize")
    b = run_federation(_spec("sticky2"), workers=1, ingest="stream")
    assert _canonical(a.report) == _canonical(b.report)


# ----------------------------------------------------------------------
# Routers
# ----------------------------------------------------------------------
def test_sticky_router_keeps_regions_whole():
    """crc32 mod nesting: the 2-shard assignment is the 4-shard
    assignment folded mod 2, so a 4-region trace never splits a region
    at any shard count dividing 4."""
    names = [f"m{i:03d}" for i in range(64)]
    four = StickySessionRouter(Federation(name="s4", shards=4, router="sticky-session"))
    two = StickySessionRouter(Federation(name="s2", shards=2, router="sticky-session"))
    a4 = four.assign(names)
    a2 = two.assign(names)
    for name in names:
        assert a4[name] == deployment_hash(name) % 4
        assert a2[name] == a4[name] % 2


def test_least_loaded_routes_to_smallest_backlog():
    router = make_router(resolve_federation("balanced4"))
    assert router.dynamic
    assert router.route("m0", [3, 1, 2, 1]) == 1  # ties break on shard id
    assert router.route("m0", [0, 0, 0, 0]) == 0
    with pytest.raises(RuntimeError):
        router.assign(["m0"])  # dynamic routers have no static assignment


# ----------------------------------------------------------------------
# Registry and validation
# ----------------------------------------------------------------------
def test_registry_patterns_resolve():
    assert resolve_federation("fleet4").shards == 4
    assert resolve_federation("fleet4").router == "round-robin"
    assert resolve_federation("sticky2").router == "sticky-session"
    assert resolve_federation("balanced8").router == "least-loaded"
    assert resolve_federation("wan4").router == "least-loaded"
    assert "wan4" in FEDERATIONS.names()


def test_unknown_federation_raises():
    with pytest.raises(FederationError):
        resolve_federation("mesh3")


def test_federation_validation():
    with pytest.raises(FederationError):
        Federation(name="bad", shards=0)
    with pytest.raises(FederationError):
        Federation(name="bad", shards=2, router="banana")
    with pytest.raises(FederationError):
        Federation(name="bad", shards=2, router_latency=0.0)
    with pytest.raises(FederationError):
        # The epoch may not exceed the lookahead bound min(latencies).
        Federation(name="bad", shards=2, epoch=1.0, router_latency=0.05)


def test_resolved_epoch_defaults_to_min_latency():
    fed = Federation(name="f", shards=2, router_latency=0.1, kv_migration_latency=0.3)
    assert fed.resolved_epoch() == pytest.approx(0.1)
    pinned = Federation(name="f", shards=2, epoch=0.02)
    assert pinned.resolved_epoch() == pytest.approx(0.02)


# ----------------------------------------------------------------------
# Executor dispatch
# ----------------------------------------------------------------------
def test_execute_spec_dispatches_federated_specs():
    result = execute_spec(_spec("sticky2"))
    assert result.fingerprint == _spec("sticky2").fingerprint()
    assert result.report.total_requests > 0


def test_execute_spec_rejects_caller_workloads_for_federated_specs():
    spec = _spec("sticky2")
    workload = build_workload(RunSpec.from_dict({**spec.to_dict(), "federation": None}))
    with pytest.raises(ValueError):
        execute_spec(spec, workload=workload)
    with pytest.raises(ValueError):
        execute_spec(spec, metrics="streaming")
