"""The federation's correctness anchor: 1 shard == no federation.

A 1-shard federation routes every deployment to the single shard, so
the shard simulates exactly the unsharded run — the merged report must
be **canonically identical** (volatile wall-clock fields excluded) to
``execute_spec`` without the federation axis.  This is enforced across
every registered scenario, both engine backends, and both metrics
modes, so the federated path can never drift from the serving loop it
wraps: any change that breaks a simulation invariant breaks this
module first.

The router does not matter at 1 shard (there is nowhere else to send
traffic), which is pinned separately: ``balanced1`` — a *dynamic*
router — must still match the unsharded run byte for byte.
"""

from __future__ import annotations

import json

import pytest

from repro.registry import SCENARIOS
from repro.runner import RunSpec, execute_spec

_SCENARIO_CLUSTERS = {
    "het-fleet": "het-gpu",
    "cold-churn": "rack-oversub",
    "cpu-harvest": "harvest16",
}

ENGINES_UNDER_TEST = ("reference", "vectorized")
METRICS_MODES = ("exact", "streaming")

_reports: dict[tuple[str, str, str, str | None], str] = {}


def _spec(scenario: str, engine: str, metrics: str, federation: str | None) -> RunSpec:
    return RunSpec(
        system="slinfer",
        scenario=scenario,
        n_models=4,
        cluster=_SCENARIO_CLUSTERS.get(scenario, "cpu2-gpu2"),
        seed=1,
        scale="smoke",
        metrics=metrics,
        engine=engine,
        federation=federation,
    )


def _canonical(scenario: str, engine: str, metrics: str, federation: str | None) -> str:
    key = (scenario, engine, metrics, federation)
    if key not in _reports:
        result = execute_spec(_spec(scenario, engine, metrics, federation))
        _reports[key] = json.dumps(
            result.report.to_dict(include_volatile=False), sort_keys=True
        )
    return _reports[key]


@pytest.mark.parametrize("metrics", METRICS_MODES)
@pytest.mark.parametrize("engine", ENGINES_UNDER_TEST)
@pytest.mark.parametrize("scenario", SCENARIOS.names())
def test_one_shard_equals_unsharded(scenario, engine, metrics):
    assert _canonical(scenario, engine, metrics, "fleet1") == _canonical(
        scenario, engine, metrics, None
    )


def test_one_shard_dynamic_router_also_exact():
    """Even a least-loaded (dynamic) federation collapses to the
    unsharded run at 1 shard: with nowhere to route, the controller must
    not perturb arrival times or ordering."""
    assert _canonical("azure", "reference", "exact", "balanced1") == _canonical(
        "azure", "reference", "exact", None
    )


def test_federation_axis_changes_the_fingerprint():
    """Sharding changes what is simulated, so a federated spec may never
    share a cache slot with the unsharded spec."""
    base = _spec("azure", "reference", "exact", None)
    fed = _spec("azure", "reference", "exact", "fleet1")
    assert base.fingerprint() != fed.fingerprint()
    assert "fleet1(" in fed.label() and "fleet1(" not in base.label()
