"""Tests for the synthetic Azure serverless trace (Fig. 21 / §III-C)."""

import pytest

from repro.models import LLAMA2_7B, LLAMA32_3B
from repro.workloads import AzureServerlessConfig, synthesize_azure_trace
from repro.workloads.azure_serverless import mixed_models, replica_models
from repro.workloads.spec import RequestSpec, Workload


def _trace(n_models=64, seed=0, **kwargs):
    models = replica_models(LLAMA2_7B, n_models)
    config = AzureServerlessConfig(n_models=n_models, seed=seed, **kwargs)
    return synthesize_azure_trace(models, config)


@pytest.mark.parametrize("n_models,expected", [(32, 2366), (64, 4684), (128, 9266)])
def test_totals_match_paper_within_10pct(n_models, expected):
    workload = _trace(n_models=n_models, seed=1)
    assert workload.total_requests == pytest.approx(expected, rel=0.10)


def test_top_models_dominate():
    # §III-C: the top 1 % of functions contributes ~26 % of requests.
    workload = _trace(n_models=128, seed=2)
    assert 0.15 <= workload.top_share(0.01) <= 0.45


def test_most_models_receive_few_requests():
    # Fig. 21 inset: "Most models have few requests, top models have many."
    workload = _trace(n_models=64, seed=3)
    rpms = sorted(workload.per_model_rpm().values())
    median_rpm = rpms[len(rpms) // 2]
    assert median_rpm < 2.0
    assert max(rpms) > 10 * max(median_rpm, 0.1)


def test_burstiness_creates_minute_peaks():
    workload = _trace(n_models=32, seed=1)
    per_minute = workload.per_minute_counts()
    mean = sum(per_minute) / len(per_minute)
    assert max(per_minute) > 1.5 * mean


def test_arrivals_sorted_and_within_duration():
    workload = _trace(n_models=32, seed=4)
    arrivals = [r.arrival for r in workload.requests]
    assert arrivals == sorted(arrivals)
    assert 0 <= arrivals[0] and arrivals[-1] < workload.duration


def test_input_lengths_respect_model_context():
    workload = _trace(n_models=32, seed=5)
    max_context = LLAMA2_7B.max_context
    for request in workload.requests:
        assert request.input_len + request.output_len <= max_context


def test_deterministic_given_seed():
    a = _trace(n_models=32, seed=7)
    b = _trace(n_models=32, seed=7)
    assert [(r.deployment, r.arrival) for r in a.requests] == [
        (r.deployment, r.arrival) for r in b.requests
    ]


def test_different_seeds_differ():
    a = _trace(n_models=32, seed=1)
    b = _trace(n_models=32, seed=2)
    assert a.total_requests != b.total_requests or a.requests != b.requests


def test_replica_models_names_unique():
    models = replica_models(LLAMA32_3B, 16)
    assert len(models) == 16
    assert all(spec is LLAMA32_3B for spec in models.values())


def test_mixed_models_respects_ratio():
    models = mixed_models({LLAMA32_3B: 2, LLAMA2_7B: 1}, total=30)
    counts = {}
    for spec in models.values():
        counts[spec.name] = counts.get(spec.name, 0) + 1
    assert counts["llama-3.2-3b"] == 20
    assert counts["llama-2-7b"] == 10


def test_workload_rejects_unknown_deployment():
    with pytest.raises(ValueError):
        Workload(
            name="bad",
            deployments={},
            requests=[RequestSpec("ghost", 1.0, 10, 10)],
            duration=10.0,
        )


def test_truncated_and_scaled_views():
    workload = _trace(n_models=32, seed=1)
    short = workload.truncated(60.0)
    assert short.duration == 60.0
    assert all(r.arrival < 60.0 for r in short.requests)
    stretched = workload.scaled(2.0)
    assert stretched.duration == workload.duration * 2
    assert stretched.total_requests == workload.total_requests
