"""Every registered scenario must stream exactly what it materializes.

The lazy emission path reorders *construction* (chunked array slices
merged through a heap) but must never reorder *content*: for any spec,
``build_workload_stream`` yields the same RequestSpec sequence — and the
same deployments and horizon — as the materialized ``build_workload``.
This is the pin that lets the simulator's streamed ingest claim
byte-identical reports without re-running every golden fixture twice.
"""

import pytest

from repro.registry import SCENARIOS
from repro.runner import RunSpec, build_workload, build_workload_stream


def _spec(scenario: str) -> RunSpec:
    return RunSpec(
        system="slinfer",
        scenario=scenario,
        n_models=4,
        cluster="cpu2-gpu2",
        seed=1,
        scale="smoke",
    )


@pytest.mark.parametrize("scenario", SCENARIOS.names())
def test_stream_equals_materialized(scenario):
    spec = _spec(scenario)
    workload = build_workload(spec)
    stream = build_workload_stream(spec)
    assert stream.name == workload.name
    assert stream.duration == workload.duration
    assert set(stream.deployments) == set(workload.deployments)
    for name, deployment in workload.deployments.items():
        streamed = stream.deployments[name]
        assert streamed.model is deployment.model
        assert streamed.tp_degree == deployment.tp_degree
    assert list(stream) == workload.requests


def test_pattern_scenarios_stream_too():
    spec = _spec("prefix-mix75")
    assert list(build_workload_stream(spec)) == build_workload(spec).requests
