"""Tests for dataset length distributions (Fig. 34 statistics)."""

import numpy as np
import pytest

from repro.sim import make_rng
from repro.workloads import (
    AZURE_CODE,
    AZURE_CONV,
    DATASETS,
    HUMANEVAL,
    LONGBENCH,
    SHAREGPT,
)


def test_conversation_inputs_mostly_under_4k():
    # §IV-A2: 97.9 % of conversation inputs are under 4 K tokens.
    assert AZURE_CONV.input_fraction_below(4096) == pytest.approx(0.979, abs=0.01)


def test_code_inputs_mostly_under_4k():
    # §IV-A2: 85.9 % of coding inputs are under 4 K tokens.
    assert AZURE_CODE.input_fraction_below(4096) == pytest.approx(0.859, abs=0.02)


def test_empirical_samples_match_analytic_cdf():
    rng = make_rng(0, "test")
    samples = AZURE_CONV.sample_input_lens(rng, 20000)
    assert (samples < 4096).mean() == pytest.approx(0.979, abs=0.01)


def test_sharegpt_outputs_longer_than_azure_code():
    # §IX-I1: ShareGPT's longer outputs create more batching opportunity.
    rng = make_rng(0, "test")
    sharegpt_out = SHAREGPT.sample_output_lens(rng, 5000).mean()
    code_out = AZURE_CODE.sample_output_lens(rng, 5000).mean()
    assert sharegpt_out > 4 * code_out


def test_longbench_inputs_reach_32k():
    rng = make_rng(1, "test")
    samples = LONGBENCH.sample_input_lens(rng, 5000)
    assert samples.max() > 16000
    assert samples.min() >= 1024


def test_longbench_mostly_beyond_cpu_range():
    # §IX-I1: CPUs handle ≤8.4K-token inputs; most of LongBench is longer.
    rng = make_rng(1, "test")
    samples = LONGBENCH.sample_input_lens(rng, 5000)
    assert (samples > 8400).mean() > 0.35


def test_humaneval_prompts_are_short():
    rng = make_rng(2, "test")
    assert HUMANEVAL.sample_input_lens(rng, 5000).mean() < 400


def test_samples_are_clipped_and_integral():
    rng = make_rng(3, "test")
    for dist in DATASETS.values():
        inputs = dist.sample_input_lens(rng, 1000)
        outputs = dist.sample_output_lens(rng, 1000)
        assert inputs.dtype.kind == "i" and outputs.dtype.kind == "i"
        assert inputs.min() >= dist.input_clip[0]
        assert inputs.max() <= dist.input_clip[1]
        assert outputs.min() >= dist.output_clip[0]
        assert outputs.max() <= dist.output_clip[1]


def test_sample_pairs_zip_inputs_and_outputs():
    rng = make_rng(4, "test")
    pairs = AZURE_CONV.sample_pairs(rng, 10)
    assert len(pairs) == 10
    assert all(isinstance(i, int) and isinstance(o, int) for i, o in pairs)


def test_mean_output_len_is_lognormal_mean():
    expected = AZURE_CONV.output_median * np.exp(AZURE_CONV.output_sigma**2 / 2)
    assert AZURE_CONV.mean_output_len == pytest.approx(expected)


def test_determinism_per_seed():
    a = AZURE_CONV.sample_pairs(make_rng(9, "x"), 50)
    b = AZURE_CONV.sample_pairs(make_rng(9, "x"), 50)
    assert a == b
