"""The registered workload scenarios: shape and determinism."""

import pytest

from repro.models import CODELLAMA_34B, LLAMA2_7B
from repro.registry import SCENARIOS


def build(name, n_models=16, duration=600.0, requests_per_model=24.0, seed=3, **params):
    return SCENARIOS.get(name)(LLAMA2_7B, n_models, duration, requests_per_model, seed, **params)


@pytest.mark.parametrize("name", ["azure", "burstgpt", "diurnal", "bursty-spike", "mixed-fleet"])
def test_scenarios_build_valid_workloads(name):
    workload = build(name)
    assert len(workload.deployments) == 16
    assert workload.duration == 600.0
    assert workload.total_requests > 0
    assert all(0.0 <= r.arrival < 600.0 for r in workload.requests)


@pytest.mark.parametrize("name", ["diurnal", "bursty-spike", "mixed-fleet"])
def test_scenarios_deterministic_per_seed(name):
    first, second = build(name), build(name)
    assert [(r.deployment, r.arrival, r.input_len, r.output_len) for r in first.requests] == [
        (r.deployment, r.arrival, r.input_len, r.output_len) for r in second.requests
    ]
    different = build(name, seed=4)
    assert [r.arrival for r in first.requests] != [r.arrival for r in different.requests]


def test_diurnal_concentrates_load_at_the_peak():
    workload = build("diurnal", n_models=32, requests_per_model=40.0, peak_to_trough=6.0)
    counts = workload.per_minute_counts()
    # One cycle starting at the trough: the middle of the trace is the peak.
    edge = sum(counts[:2]) + sum(counts[-2:])
    middle = sum(counts[4:6])
    assert middle > edge


def test_bursty_spike_floods_the_window():
    workload = build(
        "bursty-spike",
        n_models=32,
        requests_per_model=20.0,
        spike_factor=10.0,
        spike_start=0.5,
        spike_width=0.1,
    )
    duration = workload.duration
    window = [r for r in workload.requests if 0.5 * duration <= r.arrival < 0.6 * duration]
    # The 10% window holds far more than 10% of the traffic.
    assert len(window) > 0.4 * workload.total_requests


def test_bursty_spike_rejects_bad_window():
    with pytest.raises(ValueError):
        build("bursty-spike", spike_start=1.2)


def test_mixed_fleet_runs_34b_tensor_parallel():
    workload = build("mixed-fleet", n_models=24)
    tp2 = [d for d in workload.deployments.values() if d.tp_degree == 2]
    assert tp2, "expected TP-2 deployments in the mixed fleet"
    assert all(d.model is CODELLAMA_34B for d in tp2)
    sizes = {d.model.size_label for d in workload.deployments.values()}
    assert len(sizes) == 4


def test_mixed_fleet_ratio_validation():
    with pytest.raises(ValueError):
        build("mixed-fleet", ratio=(1, 2))


def test_dataset_param_selects_length_distribution():
    conv = build("azure", dataset="azure-conversation")
    code = build("azure", dataset="azure-code")
    # Code outputs are much shorter than conversation outputs on average.
    mean_out = lambda w: sum(r.output_len for r in w.requests) / w.total_requests
    assert mean_out(code) < mean_out(conv)
    with pytest.raises(KeyError):
        build("azure", dataset="no-such-dataset")
