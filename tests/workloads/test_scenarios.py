"""The registered workload scenarios: shape and determinism."""

import pytest

from repro.models import CODELLAMA_34B, LLAMA2_7B
from repro.registry import SCENARIOS


def build(name, n_models=16, duration=600.0, requests_per_model=24.0, seed=3, **params):
    return SCENARIOS.get(name)(LLAMA2_7B, n_models, duration, requests_per_model, seed, **params)


@pytest.mark.parametrize(
    "name",
    [
        "azure",
        "burstgpt",
        "diurnal",
        "bursty-spike",
        "mixed-fleet",
        "diurnal-week",
        "million-burst",
        "het-fleet",
        "cold-churn",
        "cpu-harvest",
        "decode-marathon",
        "shared-sysprompt",
        "agentic-loop",
        "prefix-mix",
    ],
)
def test_scenarios_build_valid_workloads(name):
    workload = build(name)
    assert len(workload.deployments) == 16
    assert workload.duration == 600.0
    assert workload.total_requests > 0
    assert all(0.0 <= r.arrival < 600.0 for r in workload.requests)


@pytest.mark.parametrize(
    "name",
    [
        "diurnal",
        "bursty-spike",
        "mixed-fleet",
        "diurnal-week",
        "million-burst",
        "het-fleet",
        "cold-churn",
        "cpu-harvest",
        "decode-marathon",
        "shared-sysprompt",
        "agentic-loop",
        "prefix-mix",
    ],
)
def test_scenarios_deterministic_per_seed(name):
    first, second = build(name), build(name)
    assert [(r.deployment, r.arrival, r.input_len, r.output_len) for r in first.requests] == [
        (r.deployment, r.arrival, r.input_len, r.output_len) for r in second.requests
    ]
    different = build(name, seed=4)
    assert [r.arrival for r in first.requests] != [r.arrival for r in different.requests]


def test_diurnal_concentrates_load_at_the_peak():
    workload = build("diurnal", n_models=32, requests_per_model=40.0, peak_to_trough=6.0)
    counts = workload.per_minute_counts()
    # One cycle starting at the trough: the middle of the trace is the peak.
    edge = sum(counts[:2]) + sum(counts[-2:])
    middle = sum(counts[4:6])
    assert middle > edge


def test_bursty_spike_floods_the_window():
    workload = build(
        "bursty-spike",
        n_models=32,
        requests_per_model=20.0,
        spike_factor=10.0,
        spike_start=0.5,
        spike_width=0.1,
    )
    duration = workload.duration
    window = [r for r in workload.requests if 0.5 * duration <= r.arrival < 0.6 * duration]
    # The 10% window holds far more than 10% of the traffic.
    assert len(window) > 0.4 * workload.total_requests


def test_bursty_spike_rejects_bad_window():
    with pytest.raises(ValueError):
        build("bursty-spike", spike_start=1.2)


def test_mixed_fleet_runs_34b_tensor_parallel():
    workload = build("mixed-fleet", n_models=24)
    tp2 = [d for d in workload.deployments.values() if d.tp_degree == 2]
    assert tp2, "expected TP-2 deployments in the mixed fleet"
    assert all(d.model is CODELLAMA_34B for d in tp2)
    sizes = {d.model.size_label for d in workload.deployments.values()}
    assert len(sizes) == 4


def test_mixed_fleet_ratio_validation():
    with pytest.raises(ValueError):
        build("mixed-fleet", ratio=(1, 2))


def test_diurnal_week_has_seven_cycles_with_quieter_weekend():
    workload = build(
        "diurnal-week", n_models=32, requests_per_model=60.0, weekend_factor=0.3
    )
    duration = workload.duration
    day = duration / 7.0
    per_day = [0] * 7
    for request in workload.requests:
        per_day[min(6, int(request.arrival / day))] += 1
    weekday_mean = sum(per_day[:5]) / 5.0
    weekend_mean = sum(per_day[5:]) / 2.0
    assert weekend_mean < 0.6 * weekday_mean, per_day


def test_diurnal_week_rejects_bad_params():
    with pytest.raises(ValueError):
        build("diurnal-week", peak_to_trough=0.5)
    with pytest.raises(ValueError):
        build("diurnal-week", weekend_factor=0.0)


def test_million_burst_scales_budget_and_concentrates_bursts():
    stationary = build("azure", n_models=32, requests_per_model=20.0)
    storm = build(
        "million-burst",
        n_models=32,
        requests_per_model=20.0,
        load_factor=4.0,
        bursts=4,
        burst_width=0.2,
        burst_share=0.5,
    )
    # The storm carries ~load_factor times the stationary volume...
    assert storm.total_requests > 3.0 * stationary.total_requests
    # ...with the burst half of it inside the four 20%-of-slot windows
    # (20% of the trace overall holds well over 20% of the traffic).
    duration = storm.duration
    slot = duration / 4.0
    window = 0.2 * slot
    in_windows = 0
    for request in storm.requests:
        burst = min(3, int(request.arrival / slot))
        start = burst * slot + (slot - window) / 2.0
        if start <= request.arrival < start + window:
            in_windows += 1
    assert in_windows > 0.4 * storm.total_requests


def test_million_burst_rejects_bad_params():
    with pytest.raises(ValueError):
        build("million-burst", load_factor=0.0)
    with pytest.raises(ValueError):
        build("million-burst", bursts=0)
    with pytest.raises(ValueError):
        build("million-burst", burst_width=1.5)
    with pytest.raises(ValueError):
        build("million-burst", hot_share=1.5)


def test_het_fleet_mixes_three_sizes_that_fit_different_gpus():
    from repro.hardware import A100_80GB, V100_32GB
    from repro.models import LLAMA2_13B

    workload = build("het-fleet", n_models=12)
    sizes = {d.model.name for d in workload.deployments.values()}
    assert len(sizes) == 3
    # The point of the scenario: the 13B deployments are comfortable on
    # an A100 but memory-tight on a 32 GiB V100, so spec-aware placement
    # is doing real work on the het-gpu cluster.
    assert LLAMA2_13B.weight_bytes < 0.35 * A100_80GB.memory_bytes
    assert LLAMA2_13B.weight_bytes > 0.7 * V100_32GB.memory_bytes


def test_het_fleet_ratio_validation():
    with pytest.raises(ValueError, match="ratio"):
        build("het-fleet", ratio=(1, 2))


def test_cold_churn_staggers_activity_into_waves():
    waves = 4
    workload = build("cold-churn", n_models=8, waves=waves, background_share=0.0)
    slot = workload.duration / waves
    names = sorted(workload.deployments)
    for name, deployment_requests in _by_deployment(workload).items():
        index = names.index(name)
        start = (index % waves) * slot
        end = start + 0.5 * slot
        assert all(start <= r.arrival <= end for r in deployment_requests)


def test_cold_churn_rejects_bad_params():
    with pytest.raises(ValueError):
        build("cold-churn", waves=0)
    with pytest.raises(ValueError):
        build("cold-churn", wave_width=0.0)
    with pytest.raises(ValueError):
        build("cold-churn", background_share=1.5)


def test_cpu_harvest_uses_the_small_cpu_servable_model():
    from repro.models import LLAMA32_3B

    workload = build("cpu-harvest", n_models=6)
    assert all(d.model is LLAMA32_3B for d in workload.deployments.values())


def _by_deployment(workload):
    grouped = {}
    for request in workload.requests:
        grouped.setdefault(request.deployment, []).append(request)
    return grouped


def test_dataset_param_selects_length_distribution():
    conv = build("azure", dataset="azure-conversation")
    code = build("azure", dataset="azure-code")
    # Code outputs are much shorter than conversation outputs on average.
    mean_out = lambda w: sum(r.output_len for r in w.requests) / w.total_requests
    assert mean_out(code) < mean_out(conv)
    with pytest.raises(KeyError):
        build("azure", dataset="no-such-dataset")


def test_decode_marathon_is_decode_dominated():
    workload = build("decode-marathon", n_models=4, requests_per_model=8.0)
    for request in workload.requests:
        # Short prompts, near-max outputs clamped inside the context
        # window: the run spends virtually all its events decoding.
        assert request.input_len == 64
        assert request.output_len >= 100 * request.input_len // 10
        assert request.input_len + request.output_len < LLAMA2_7B.max_context
    # A staggered trickle, not a burst: per-model arrivals are spread
    # at least half the stagger apart.
    by_model = {}
    for request in workload.requests:
        by_model.setdefault(request.deployment, []).append(request.arrival)
    for arrivals in by_model.values():
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert all(gap > 7.5 for gap in gaps)


def test_decode_marathon_rejects_bad_stagger():
    with pytest.raises(ValueError):
        build("decode-marathon", stagger=0.0)


def test_shared_sysprompt_every_request_opens_with_the_system_prompt():
    workload = build("shared-sysprompt", n_models=8, sys_tokens=512)
    for request in workload.requests:
        assert request.prefix_id == f"{request.deployment}-sys:512"
        assert request.prefix_len == 512
        assert request.input_len > 512  # user turn on top of the prompt
    # Session trains, not uniform Poisson: per-model arrivals include
    # intra-train gaps near the 5 s headway (with its 0.8–1.2 jitter).
    for arrivals in (sorted(a) for a in _arrivals_by_model(workload).values()):
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert any(gap <= 6.0 for gap in gaps)


def test_agentic_loop_turns_extend_the_session_path():
    workload = build("agentic-loop", n_models=4, turns=5)
    for request in workload.requests:
        head = request.prefix_id.split("/")[0]
        assert head.startswith("sys:")  # the shared seed opens every path
        assert request.prefix_len == request.input_len  # whole prompt is named
    depths = {request.prefix_id.count("/") for request in workload.requests}
    assert depths == set(range(5))  # turns 0..4 all present


def test_prefix_mix_share_controls_the_shared_fraction():
    workload = build("prefix-mix", n_models=8, requests_per_model=40.0, share=0.5)
    shared = [r for r in workload.requests if r.prefix_id]
    fraction = len(shared) / workload.total_requests
    assert 0.35 < fraction < 0.65
    assert all(r.prefix_len == 512 for r in shared)
    assert all(r.input_len > r.prefix_len for r in shared)


def test_prefix_mix_rejects_bad_share():
    with pytest.raises(ValueError):
        build("prefix-mix", share=1.5)


def _arrivals_by_model(workload):
    grouped = {}
    for request in workload.requests:
        grouped.setdefault(request.deployment, []).append(request.arrival)
    return grouped
