"""Tests for BurstGPT traces and the popularity models (Figs. 2, 3, 27)."""

import numpy as np
import pytest

from repro.models import LLAMA2_7B
from repro.workloads import (
    BurstGPTConfig,
    huggingface_size_popularity,
    lmsys_request_rates,
    synthesize_burstgpt_trace,
)
from repro.workloads.azure_serverless import replica_models


def _burst(rps=1.0, seed=0):
    models = replica_models(LLAMA2_7B, 64)
    return synthesize_burstgpt_trace(models, BurstGPTConfig(aggregate_rps=rps, seed=seed))


def test_aggregate_rate_matches_target():
    workload = _burst(rps=2.0, seed=1)
    rate = workload.total_requests / workload.duration
    assert rate == pytest.approx(2.0, rel=0.15)


def test_arrivals_burstier_than_poisson():
    workload = _burst(rps=1.0, seed=2)
    arrivals = np.array([r.arrival for r in workload.requests])
    gaps = np.diff(arrivals)
    cv = gaps.std() / gaps.mean()
    assert cv > 1.2  # Poisson would be ~1.0


def test_pareto_spread_across_models():
    # §IX-I2: invocations distributed over 64 models via Pareto.
    workload = _burst(rps=4.0, seed=3)
    counts = sorted(workload.requests_per_model().values(), reverse=True)
    top_share = sum(counts[:6]) / sum(counts)
    assert top_share > 0.3  # top ~10% of models carry a large share


def test_config_validation():
    with pytest.raises(ValueError):
        BurstGPTConfig(aggregate_rps=0)
    models = replica_models(LLAMA2_7B, 8)
    with pytest.raises(ValueError):
        synthesize_burstgpt_trace(models, BurstGPTConfig(n_models=64))


# ----------------------------------------------------------------------
# Popularity (Figs. 2-3)
# ----------------------------------------------------------------------
def test_hf_downloads_under_8b_matches_paper():
    # §III-B: models ≤8 B params take 87 % of downloads.
    stats = huggingface_size_popularity(seed=0)
    assert stats.downloads_under_8b == pytest.approx(0.87, abs=0.05)


def test_hf_likes_under_8b_matches_paper():
    # §III-B: ...and 60 % of user preferences (likes).
    stats = huggingface_size_popularity(seed=0)
    assert stats.likes_under_8b == pytest.approx(0.60, abs=0.05)


def test_hf_downloads_skew_smaller_than_likes():
    stats = huggingface_size_popularity(seed=1)
    assert stats.downloads_under_8b > stats.likes_under_8b


def test_lmsys_most_models_below_5_req_per_hour():
    # §I / Fig. 3: 56 % of LMSYS models receive <5 requests/hour.
    rates = lmsys_request_rates(n_models=25, seed=0)
    assert 0.4 <= (rates < 5.0).mean() <= 0.72


def test_lmsys_head_is_hot():
    rates = lmsys_request_rates(n_models=25, seed=0)
    assert rates[0] > 20.0  # the hottest model sees tens of req/hour
    assert list(rates) == sorted(rates, reverse=True)
