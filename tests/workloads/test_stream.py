"""Unit behaviour of the WorkloadStream protocol pieces."""

import threading

import numpy as np
import pytest

from repro.models import LLAMA2_7B
from repro.workloads import (
    ArrayGroup,
    Deployment,
    GroupedStream,
    IteratorStream,
    MaterializedStream,
    QueueStream,
    RequestSpec,
    SpecGroup,
    StreamClosedError,
    StreamOrderError,
    Workload,
    finish_trace,
    rename_trace,
)


def _deployments(*names: str) -> dict[str, Deployment]:
    return {name: Deployment(name=name, model=LLAMA2_7B) for name in names}


def _spec(deployment: str, arrival: float, **kwargs) -> RequestSpec:
    kwargs.setdefault("input_len", 128)
    kwargs.setdefault("output_len", 32)
    return RequestSpec(deployment=deployment, arrival=arrival, **kwargs)


@pytest.fixture
def workload() -> Workload:
    deployments = _deployments("m0", "m1")
    requests = [_spec("m0", 3.0), _spec("m1", 1.0), _spec("m0", 2.0)]
    return Workload(name="w", deployments=deployments, requests=requests, duration=10.0)


# ----------------------------------------------------------------------
# MaterializedStream / from_stream round-trips
# ----------------------------------------------------------------------
def test_materialized_stream_round_trip(workload):
    stream = workload.stream()
    assert isinstance(stream, MaterializedStream)
    assert stream.name == workload.name
    assert stream.duration == workload.duration
    assert list(stream) == workload.requests
    # Re-iterable, and materialize() hands back the original object.
    assert list(stream) == workload.requests
    assert stream.materialize() is workload


def test_from_stream_rebuilds_the_workload(workload):
    rebuilt = Workload.from_stream(workload.stream())
    assert rebuilt.name == workload.name
    assert rebuilt.requests == workload.requests
    assert rebuilt.duration == workload.duration


def test_from_stream_infers_duration_from_last_arrival():
    deployments = _deployments("m0")
    specs = [_spec("m0", 1.0), _spec("m0", 7.5)]
    stream = IteratorStream("live", deployments, iter(specs), duration=None)
    rebuilt = Workload.from_stream(stream)
    assert rebuilt.duration == 7.5


def test_iterator_stream_accepts_a_factory():
    deployments = _deployments("m0")
    specs = [_spec("m0", 0.5)]
    stream = IteratorStream("f", deployments, lambda: iter(specs), duration=1.0)
    assert list(stream) == specs
    assert list(stream) == specs  # factory makes it re-iterable


# ----------------------------------------------------------------------
# Grouped emission: ordering and ties
# ----------------------------------------------------------------------
def test_grouped_stream_merges_sorted_and_breaks_ties_by_group_order():
    deployments = _deployments("a", "b")
    first = ArrayGroup("a", np.array([5.0, 1.0]), np.array([10, 11]), np.array([1, 2]))
    second = ArrayGroup("b", np.array([1.0, 3.0]), np.array([20, 21]), np.array([3, 4]))
    stream = GroupedStream("g", deployments, [first, second], duration=6.0)
    assert stream.total_requests == 4
    merged = list(stream)
    assert [spec.arrival for spec in merged] == [1.0, 1.0, 3.0, 5.0]
    # Equal arrivals resolve to the earlier group — the same tie-break a
    # global stable sort gives the concatenated emission order.
    assert [spec.deployment for spec in merged] == ["a", "b", "b", "a"]
    assert merged == list(stream)  # re-iterable


def test_finish_trace_matches_between_modes():
    deployments = _deployments("a")
    group = ArrayGroup("a", np.array([2.0, 0.5]), np.array([8, 9]), np.array([1, 1]))
    materialized = finish_trace("t", deployments, [group], 4.0, "materialize")
    streamed = finish_trace("t", deployments, [group], 4.0, "stream")
    assert isinstance(materialized, Workload)
    assert list(streamed) == materialized.requests
    assert streamed.duration == materialized.duration == 4.0


def test_finish_trace_rejects_unknown_emit():
    with pytest.raises(ValueError, match="emit"):
        finish_trace("t", _deployments("a"), [], 1.0, "lazy-ish")


def test_spec_group_orders_by_arrival():
    specs = [_spec("a", 2.0), _spec("a", 1.0)]
    group = SpecGroup(specs)
    assert list(group.emit()) == specs
    assert [s.arrival for s in group.ordered()] == [1.0, 2.0]


def test_rename_trace_covers_both_shapes(workload):
    renamed = rename_trace(workload, "fresh")
    assert isinstance(renamed, Workload)
    assert renamed.name == "fresh" and renamed.requests == workload.requests
    stream = rename_trace(workload.stream(), "live")
    assert stream.name == "live"


# ----------------------------------------------------------------------
# QueueStream: the live-ingest end
# ----------------------------------------------------------------------
def test_queue_stream_push_iterate_close():
    stream = QueueStream("q", _deployments("m0"), duration=None)
    assert stream.push(_spec("m0", 1.0)) == 0
    assert stream.push(_spec("m0", 2.0)) == 1
    stream.close()
    drained = list(stream)
    assert [s.arrival for s in drained] == [1.0, 2.0]
    assert stream.submitted == 2
    assert stream.closed


def test_queue_stream_rejects_out_of_order_and_unknown():
    stream = QueueStream("q", _deployments("m0"))
    stream.push(_spec("m0", 5.0))
    with pytest.raises(StreamOrderError):
        stream.push(_spec("m0", 4.0))
    with pytest.raises(ValueError, match="unknown deployment"):
        stream.push(_spec("nope", 6.0))
    stream.close()
    with pytest.raises(StreamClosedError):
        stream.push(_spec("m0", 7.0))


def test_queue_stream_wait_processed_tracks_the_consumer():
    stream = QueueStream("q", _deployments("m0"))
    index = stream.push(_spec("m0", 1.0))
    assert not stream.wait_processed(index, timeout=0.01)

    consumed = []

    def consume():
        for spec in stream:
            consumed.append(spec)

    thread = threading.Thread(target=consume, daemon=True)
    thread.start()
    # The consumer declares an item processed when it blocks for the
    # next one, so the first push becomes visible without closing.
    assert stream.wait_processed(index, timeout=5.0)
    stream.close()
    thread.join(timeout=5.0)
    assert len(consumed) == 1
