"""overhead_timer: the one sanctioned wall-clock seam for policy code.

PR context: slinfer's shadow-validation and preemption-planning paths
used to call ``time.perf_counter`` directly; the ``no-wall-clock`` lint
rule forbids that, so they now time themselves through
``ServingSystem.overhead_timer``.  These tests pin that the seam still
feeds Fig. 33 overhead stats and goes fully quiet when measurement is
disabled.
"""

from __future__ import annotations

from repro.core.config import SlinferConfig
from repro.runner import RunSpec, execute_spec
from repro.runner.executor import build_system
from repro.runner.spec import build_workload

TINY = dict(n_models=2, duration=60.0)


def test_slinfer_overheads_flow_through_seam():
    # measure_overheads defaults on, so a plain run must surface the
    # wall-clock sections slinfer times via overhead_timer.
    report = execute_spec(RunSpec(system="slinfer", **TINY)).report
    assert "shadow_validation" in report.overhead_stats
    stat = report.overhead_stats["shadow_validation"]
    assert stat.count > 0
    assert stat.total_seconds >= 0.0


def test_timer_noop_when_measurement_disabled():
    spec = RunSpec(system="slinfer", **TINY)
    system = build_system(spec, config=SlinferConfig(measure_overheads=False))
    report = system.run(build_workload(spec))
    assert report.overhead_stats == {}


def test_timer_records_named_section():
    spec = RunSpec(system="slinfer", **TINY)
    system = build_system(spec)
    with system.overhead_timer("custom_section"):
        pass
    report = system.run(build_workload(spec))
    assert report.overhead_stats["custom_section"].count == 1
