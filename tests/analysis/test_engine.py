"""Engine behaviour: pragmas, baselines, JSON round-trips, file walking."""

from __future__ import annotations

import json

import pytest

from repro.analysis.engine import (
    LintReport,
    all_rule_ids,
    apply_baseline,
    get_rule,
    load_baseline,
    module_name_for,
    run_lint,
    suppressed_rules,
    write_baseline,
)
from repro.analysis.findings import Finding


def _write(tmp_path, name: str, source: str):
    path = tmp_path / name
    path.write_text(source)
    return path


WALL_CLOCK = "import time\nt = time.perf_counter()\n"


# ----------------------------------------------------------------------
# Suppression pragmas
# ----------------------------------------------------------------------
class TestPragmas:
    def test_pragma_on_exact_line_suppresses(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            "import time\nt = time.perf_counter()  # repro: allow[no-wall-clock]\n",
        )
        report = run_lint([path], rules=["no-wall-clock"])
        assert report.findings == []
        assert len(report.suppressed) == 1
        assert report.suppressed[0].rule == "no-wall-clock"

    def test_pragma_on_other_line_does_not_suppress(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            "import time  # repro: allow[no-wall-clock]\nt = time.perf_counter()\n",
        )
        report = run_lint([path], rules=["no-wall-clock"])
        assert len(report.findings) == 1

    def test_pragma_is_rule_specific(self, tmp_path):
        path = _write(
            tmp_path,
            "mod.py",
            "import time\nt = time.perf_counter()  # repro: allow[float-accum]\n",
        )
        report = run_lint([path], rules=["no-wall-clock"])
        assert len(report.findings) == 1

    def test_pragma_accepts_multiple_rules(self):
        line = "x = 1  # repro: allow[no-wall-clock, float-accum]"
        assert suppressed_rules(line) == {"no-wall-clock", "float-accum"}
        assert suppressed_rules("x = 1  # plain comment") == frozenset()


# ----------------------------------------------------------------------
# Baseline workflow
# ----------------------------------------------------------------------
class TestBaseline:
    def test_baseline_entry_absorbs_matching_finding(self, tmp_path):
        source_path = _write(tmp_path, "mod.py", WALL_CLOCK)
        report = run_lint([source_path], rules=["no-wall-clock"])
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, report.findings)

        gated = run_lint([source_path], rules=["no-wall-clock"], baseline=baseline_path)
        assert gated.findings == []
        assert gated.stale_baseline == []
        assert not gated.failed

    def test_baseline_matches_by_rule_and_path_despite_line_drift(self, tmp_path):
        source_path = _write(tmp_path, "mod.py", WALL_CLOCK)
        report = run_lint([source_path], rules=["no-wall-clock"])
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, report.findings)

        # Unrelated edits move the finding to another line; the
        # grandfathered entry still absorbs it.
        source_path.write_text("# a new comment\n# another\n" + WALL_CLOCK)
        gated = run_lint([source_path], rules=["no-wall-clock"], baseline=baseline_path)
        assert gated.findings == [] and gated.stale_baseline == []

    def test_stale_entry_reported_as_fixed(self, tmp_path):
        source_path = _write(tmp_path, "mod.py", WALL_CLOCK)
        report = run_lint([source_path], rules=["no-wall-clock"])
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, report.findings)

        source_path.write_text("t = 0.0\n")  # hazard fixed
        gated = run_lint([source_path], rules=["no-wall-clock"], baseline=baseline_path)
        assert gated.findings == []
        assert len(gated.stale_baseline) == 1
        assert gated.failed  # a stale baseline must be pruned
        assert "fixed — remove from baseline" in gated.render_text()

    def test_each_entry_absorbs_exactly_one_finding(self):
        finding = Finding("mod.py", 2, 0, "no-wall-clock", "m")
        twin = Finding("mod.py", 9, 0, "no-wall-clock", "m")
        new, stale = apply_baseline([finding, twin], [finding])
        assert new == [twin]
        assert stale == []

    def test_write_then_load_round_trips(self, tmp_path):
        findings = [
            Finding("b.py", 2, 4, "engine-seam", "msg"),
            Finding("a.py", 1, 0, "no-wall-clock", "msg"),
        ]
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        assert load_baseline(path) == sorted(findings)

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_shipped_baseline_is_empty(self):
        # The satellite contract: no grandfathered findings anywhere —
        # in particular repro/sim + repro/engine ship clean.
        assert load_baseline("lint_baseline.json") == []


# ----------------------------------------------------------------------
# Reports and serialization
# ----------------------------------------------------------------------
class TestReports:
    def test_json_schema_round_trip(self, tmp_path):
        path = _write(tmp_path, "mod.py", WALL_CLOCK)
        report = run_lint([path], rules=["no-wall-clock"])
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["version"] == 1
        assert payload["files_scanned"] == 1
        restored = LintReport.from_dict(payload)
        assert restored.findings == report.findings
        assert restored.suppressed == report.suppressed
        assert restored.rules_run == report.rules_run

    def test_finding_round_trip(self):
        finding = Finding("x.py", 3, 7, "float-accum", "use fsum")
        assert Finding.from_dict(finding.to_dict()) == finding

    def test_findings_sorted_by_path_then_line(self, tmp_path):
        _write(tmp_path, "b.py", WALL_CLOCK)
        _write(tmp_path, "a.py", "import time\n\n\nt = time.time()\n")
        report = run_lint([tmp_path], rules=["no-wall-clock"])
        assert [f.path.rsplit("/", 1)[-1] for f in report.findings] == ["a.py", "b.py"]

    def test_parse_error_is_a_finding(self, tmp_path):
        path = _write(tmp_path, "broken.py", "def f(:\n")
        report = run_lint([path])
        assert len(report.findings) == 1
        assert report.findings[0].rule == "parse-error"
        assert report.failed


# ----------------------------------------------------------------------
# Registry and scoping plumbing
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_shipped_rules_registered(self):
        assert all_rule_ids() == [
            "engine-seam",
            "fingerprint-axis",
            "float-accum",
            "handler-purity",
            "no-ambient-rng",
            "no-wall-clock",
            "typed-defs",
            "unordered-iteration",
        ]

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError, match="unknown rule"):
            get_rule("no-such-rule")

    def test_module_name_for(self, tmp_path):
        assert (
            module_name_for(tmp_path / "src" / "repro" / "sim" / "engine.py")
            == "repro.sim.engine"
        )
        assert (
            module_name_for(tmp_path / "src" / "repro" / "kv" / "__init__.py")
            == "repro.kv"
        )
        assert module_name_for(tmp_path / "fixtures" / "violations.py") is None

    def test_pycache_skipped(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        _write(cache, "junk.py", WALL_CLOCK)
        _write(tmp_path, "mod.py", "x = 1\n")
        report = run_lint([tmp_path])
        assert report.files_scanned == 1
