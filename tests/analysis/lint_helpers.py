"""Helpers for the static-analysis tests."""

from __future__ import annotations

import ast

from repro.analysis.engine import FileContext, get_rule
from repro.analysis.findings import Finding


def lint_source(
    source: str, rule_id: str, module: str | None = None, path: str = "x.py"
) -> list[Finding]:
    """Run one rule against a source string (no pragma/baseline layers)."""
    rule = get_rule(rule_id)
    if not rule.applies(module):
        return []
    ctx = FileContext(
        path=path,
        module=module,
        source=source,
        lines=tuple(source.splitlines()),
        tree=ast.parse(source),
    )
    return list(rule.check(ctx))
