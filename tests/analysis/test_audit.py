"""The REPRO_AUDIT=1 conservation seam: clean runs pass, corruption raises."""

from __future__ import annotations

import pytest

from repro.analysis.audit import (
    AUDIT_ENV,
    AuditError,
    audit_enabled,
    audit_system,
    maybe_audit,
    maybe_audit_store,
)
from repro.engine.instance import Instance
from repro.engine.request import Request, RequestState
from repro.hardware.node import Node
from repro.hardware.specs import A100_80GB
from repro.kv.store import KvShareStore
from repro.metrics.collector import MetricsCollector
from repro.models.catalog import LLAMA2_7B
from repro.runner import RunSpec, execute_spec
from repro.runner.executor import build_system
from repro.runner.spec import build_workload

TINY = dict(n_models=2, duration=60.0)

SHARED = RunSpec(
    system="slinfer",
    scenario="shared-sysprompt",
    n_models=8,
    cluster="small",
    seed=3,
    scale="smoke",
    kv_sharing="on",
)


def _run_system(spec: RunSpec):
    """Build a system and drive it to completion, returning the system."""
    system = build_system(spec)
    system.run(build_workload(spec))
    return system


def _fresh_instance(inst_id: int = 999) -> Instance:
    instance = Instance(
        inst_id=inst_id, deployment="m", model=LLAMA2_7B, node=Node("gpu-x", A100_80GB)
    )
    instance.kv.allocated_bytes = 64 * instance.kv.block_bytes
    return instance


def _fresh_request(req_id: int = 10**6) -> Request:
    return Request(
        req_id=req_id,
        deployment="m0",
        arrival=0.0,
        input_len=8,
        output_len=4,
        ttft_slo=1.0,
        tpot_slo=0.1,
    )


class TestEnvSeam:
    def test_enabled_by_conftest(self):
        # tests/conftest.py turns the audit on for the whole suite, so
        # every execute_spec in every test re-proves the invariants.
        assert audit_enabled()

    def test_disabled_values(self, monkeypatch):
        for value in ("", "0"):
            monkeypatch.setenv(AUDIT_ENV, value)
            assert not audit_enabled()
        monkeypatch.delenv(AUDIT_ENV)
        assert not audit_enabled()
        monkeypatch.setenv(AUDIT_ENV, "1")
        assert audit_enabled()

    def test_maybe_audit_noop_when_disabled(self, monkeypatch):
        monkeypatch.setenv(AUDIT_ENV, "0")
        corrupt = object()  # would crash audit_system immediately
        maybe_audit(corrupt)
        maybe_audit_store(corrupt)


class TestCleanRuns:
    @pytest.mark.parametrize("metrics", ["exact", "streaming"])
    def test_execute_spec_passes_audit(self, metrics):
        result = execute_spec(RunSpec(system="slinfer", metrics=metrics, **TINY))
        assert result.report.completed_count > 0

    def test_explicit_audit_on_finished_system(self):
        system = _run_system(RunSpec(system="slinfer", **TINY))
        audit_system(system)  # idempotent after the in-run audit

    def test_kv_sharing_run_invokes_check_invariants(self, monkeypatch):
        # Serverless reclaim tears every instance down before the run
        # ends, so the detach hook is what proves KV conservation
        # against real allocation state.
        calls = 0
        original = KvShareStore.check_invariants

        def counting(self) -> None:
            nonlocal calls
            calls += 1
            original(self)

        monkeypatch.setattr(KvShareStore, "check_invariants", counting)
        execute_spec(SHARED)
        assert calls > 0


class TestCorruptionDetected:
    def test_finished_request_left_resident(self):
        system = _run_system(RunSpec(system="slinfer", **TINY))
        ghost = _fresh_request()
        ghost.state = RequestState.COMPLETED
        stray = _fresh_instance()
        stray.batch.append(ghost)
        system.executors[0].add_instance(stray)
        with pytest.raises(AuditError, match="still resident"):
            audit_system(system)

    def test_double_residency(self):
        system = _run_system(RunSpec(system="slinfer", **TINY))
        ghost = _fresh_request()
        ghost.state = RequestState.DECODING
        twin_a, twin_b = _fresh_instance(901), _fresh_instance(902)
        twin_a.batch.append(ghost)
        twin_b.batch.append(ghost)
        system.executors[0].add_instance(twin_a)
        system.executors[0].add_instance(twin_b)
        with pytest.raises(AuditError, match="resident on two instances"):
            audit_system(system)

    def test_leaked_request(self):
        # A request the collector believes is in flight, but which no
        # instance hosts and no queue holds: every counter looks
        # plausible (it arrived, it is "decoding"), yet nothing in the
        # system owns it — the residency cross-check catches it.
        system = _run_system(RunSpec(system="slinfer", **TINY))
        ghost = _fresh_request()
        ghost.state = RequestState.DECODING
        system.metrics.requests.append(ghost)
        with pytest.raises(AuditError, match="leaked"):
            audit_system(system)

    def test_conservation_counter_drift(self):
        # Streaming mode folds outcomes into counters; desyncing the
        # arrival counter from outcomes breaks conservation directly.
        system = _run_system(RunSpec(system="slinfer", metrics="streaming", **TINY))
        system.metrics._aggregate.arrivals += 1
        with pytest.raises(AuditError, match="conservation violated"):
            audit_system(system)

    def test_kv_refcount_corruption_caught(self):
        system = _run_system(RunSpec(system="slinfer", **TINY))
        instance = _fresh_instance()
        instance.kv_share = KvShareStore(instance, MetricsCollector())
        # Fabricate a phantom reference: the pool's refcount books no
        # longer balance against a recount of live blocks.
        instance.kv_share.pool._referenced += 1
        system.executors[0].add_instance(instance)
        with pytest.raises(AssertionError, match="referenced counter"):
            audit_system(system)

    def test_detach_hook_catches_corrupted_store(self):
        instance = _fresh_instance()
        store = KvShareStore(instance, MetricsCollector())
        instance.kv_share = store
        maybe_audit_store(store)  # clean store passes
        store.pool._referenced += 1
        with pytest.raises(AssertionError, match="referenced counter"):
            maybe_audit_store(store)
