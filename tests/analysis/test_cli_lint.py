"""The ``repro lint`` command: acceptance gates pinned end to end."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import all_rule_ids
from repro.cli import main

FIXTURE = str(Path(__file__).parent / "fixtures" / "violations.py")
REPO_ROOT = Path(__file__).resolve().parents[2]


class TestSeededFixture:
    def test_exits_nonzero_with_one_finding_per_rule(self, capsys):
        code = main(["lint", FIXTURE, "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        by_rule = sorted(f["rule"] for f in payload["findings"])
        # Exactly one violation of every shipped rule — the acceptance pin.
        assert by_rule == all_rule_ids()

    def test_rule_filter_restricts_findings(self, capsys):
        code = main(["lint", FIXTURE, "--rule", "no-wall-clock", "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert [f["rule"] for f in payload["findings"]] == ["no-wall-clock"]
        assert payload["rules_run"] == ["no-wall-clock"]

    def test_text_output_names_file_line_and_rule(self, capsys):
        main(["lint", FIXTURE, "--rule", "engine-seam"])
        out = capsys.readouterr().out
        assert "violations.py" in out
        assert "engine-seam" in out
        assert "1 finding(s)" in out


class TestRealTree:
    def test_src_repro_is_clean_with_empty_baseline(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code = main(["lint", "src/repro", "--baseline", "lint_baseline.json"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "0 finding(s)" in out

    def test_src_repro_is_clean_without_baseline(self, monkeypatch, capsys):
        # Stronger than the gate: no grandfathered findings exist at all.
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "src/repro"]) == 0
        capsys.readouterr()


class TestBaselineFlags:
    def test_write_baseline_then_gate_passes(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["lint", FIXTURE, "--baseline", str(baseline), "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(["lint", FIXTURE, "--baseline", str(baseline)]) == 0
        capsys.readouterr()

    def test_stale_baseline_fails_and_names_fix(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "version": 1,
                    "findings": [
                        {
                            "path": str(clean),
                            "line": 1,
                            "col": 0,
                            "rule": "no-wall-clock",
                            "message": "gone",
                        }
                    ],
                }
            )
        )
        code = main(["lint", str(clean), "--baseline", str(baseline)])
        assert code == 1
        assert "fixed — remove from baseline" in capsys.readouterr().out

    def test_write_baseline_requires_baseline_path(self, capsys):
        assert main(["lint", FIXTURE, "--write-baseline"]) == 2
        assert "--write-baseline requires --baseline" in capsys.readouterr().err


class TestUsageErrors:
    def test_unknown_rule_exits_2_and_lists_known(self, capsys):
        assert main(["lint", FIXTURE, "--rule", "no-such-rule"]) == 2
        err = capsys.readouterr().err
        assert "no-such-rule" in err
        assert "no-wall-clock" in err

    def test_missing_baseline_file_exits_2(self, tmp_path, capsys):
        code = main(["lint", FIXTURE, "--baseline", str(tmp_path / "absent.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err
