"""Per-rule units: each rule's positive match, negative space, and scope."""

from __future__ import annotations

import textwrap

from lint_helpers import lint_source

from repro.analysis.engine import get_rule


def _src(body: str) -> str:
    return textwrap.dedent(body)


# ----------------------------------------------------------------------
# no-wall-clock
# ----------------------------------------------------------------------
class TestNoWallClock:
    def test_flags_perf_counter_in_sim(self):
        src = _src(
            """
            import time
            t = time.perf_counter()
            """
        )
        found = lint_source(src, "no-wall-clock", module="repro.sim.simulator")
        assert len(found) == 1
        assert "perf_counter" in found[0].message

    def test_flags_aliased_import_and_from_import(self):
        src = _src(
            """
            import time as _wallclock
            from time import monotonic as mono
            a = _wallclock.time()
            b = mono()
            """
        )
        rules = [f.line for f in lint_source(src, "no-wall-clock", module="repro.policies.x")]
        assert rules == [4, 5]

    def test_flags_datetime_now(self):
        src = _src(
            """
            from datetime import datetime
            stamp = datetime.now()
            """
        )
        assert len(lint_source(src, "no-wall-clock", module="repro.engine.request")) == 1

    def test_allowed_in_bench_and_core(self):
        rule = get_rule("no-wall-clock")
        assert not rule.applies("repro.bench.suite")
        assert not rule.applies("repro.gateway.server")
        assert not rule.applies("repro.core.system")  # the overhead seam lives here
        assert rule.applies("repro.policies.slinfer")
        assert rule.applies(None)  # fixtures are in scope

    def test_sim_now_attribute_not_flagged(self):
        src = _src(
            """
            def handle(sim) -> float:
                return sim.now
            """
        )
        assert lint_source(src, "no-wall-clock", module="repro.sim.simulator") == []


# ----------------------------------------------------------------------
# no-ambient-rng
# ----------------------------------------------------------------------
class TestNoAmbientRng:
    def test_flags_stdlib_random(self):
        src = "import random\nx = random.shuffle(items)\n"
        found = lint_source(src, "no-ambient-rng", module="repro.policies.work")
        assert len(found) == 1 and "random.shuffle" in found[0].message

    def test_flags_np_random_global_and_unseeded_default_rng(self):
        src = _src(
            """
            import numpy as np
            a = np.random.rand(3)
            rng = np.random.default_rng()
            """
        )
        found = lint_source(src, "no-ambient-rng", module="repro.workloads.scenarios")
        assert sorted(f.line for f in found) == [3, 4]

    def test_seeded_default_rng_and_annotations_ok(self):
        src = _src(
            """
            import numpy as np

            def draw(seed: int, rng: np.random.Generator) -> float:
                local = np.random.default_rng(seed)
                return local.random()
            """
        )
        assert lint_source(src, "no-ambient-rng", module="repro.workloads.scenarios") == []

    def test_rng_seam_module_exempt(self):
        assert not get_rule("no-ambient-rng").applies("repro.sim.rng")
        assert get_rule("no-ambient-rng").applies("repro.sim.simulator")


# ----------------------------------------------------------------------
# unordered-iteration
# ----------------------------------------------------------------------
class TestUnorderedIteration:
    def test_flags_set_literal_and_assigned_set(self):
        src = _src(
            """
            candidates = {3, 1, 2}
            for c in candidates:
                print(c)
            """
        )
        assert len(lint_source(src, "unordered-iteration", module="repro.policies.x")) == 1

    def test_sorted_wrapping_accepted(self):
        src = _src(
            """
            candidates = set(names)
            for c in sorted(candidates):
                print(c)
            """
        )
        assert lint_source(src, "unordered-iteration", module="repro.policies.x") == []

    def test_membership_check_not_flagged(self):
        src = _src(
            """
            seen = set()
            if node in seen:
                pass
            """
        )
        assert lint_source(src, "unordered-iteration", module="repro.core.system") == []

    def test_dict_built_from_set_flagged(self):
        src = _src(
            """
            hot = {1, 2, 3}
            by_id = dict.fromkeys(hot)
            for key in by_id.keys():
                print(key)
            """
        )
        found = lint_source(src, "unordered-iteration", module="repro.kv.store")
        assert len(found) == 1 and "dict built from a set" in found[0].message

    def test_comprehension_over_set_call_flagged(self):
        src = "names = [n for n in set(raw)]\n"
        assert len(lint_source(src, "unordered-iteration", module="repro.sim.engine")) == 1

    def test_output_packages_exempt(self):
        rule = get_rule("unordered-iteration")
        assert not rule.applies("repro.bench.suite")
        assert not rule.applies("repro.cli")
        assert rule.applies("repro.workloads.scenarios")


# ----------------------------------------------------------------------
# fingerprint-axis
# ----------------------------------------------------------------------
class TestFingerprintAxis:
    BASE = """
        PAYLOAD_OPTIONAL_AXES = {{"topology": None}}
        FINGERPRINT_EXEMPT_AXES = frozenset({exempt})

        class RunSpec:
            system: str = "x"
            topology: str = None
            {extra_field}

            def to_dict(self) -> dict:
                payload = {{"system": self.system}}
                for axis, default in PAYLOAD_OPTIONAL_AXES.items():
                    if getattr(self, axis) != default:
                        payload[axis] = getattr(self, axis)
                return payload

            def fingerprint(self) -> str:
                payload = self.to_dict()
                for axis in sorted(FINGERPRINT_EXEMPT_AXES):
                    payload.pop(axis, None)
                return str(payload)
        """

    def _spec_module(self, extra_field: str = "", exempt: str = "()") -> str:
        return textwrap.dedent(self.BASE.format(extra_field=extra_field, exempt=exempt))

    def test_clean_spec_module_passes(self):
        assert lint_source(self._spec_module(), "fingerprint-axis") == []

    def test_unregistered_axis_flagged(self):
        found = lint_source(
            self._spec_module(extra_field='color: str = "red"'), "fingerprint-axis"
        )
        assert len(found) == 1 and "'color'" in found[0].message

    def test_stale_registry_entry_flagged(self):
        src = self._spec_module().replace(
            '{"topology": None}', '{"topology": None, "gone": 0}'
        )
        found = lint_source(src, "fingerprint-axis")
        assert len(found) == 1 and "'gone'" in found[0].message

    def test_missing_registries_flagged(self):
        src = "class RunSpec:\n    system: str = 'x'\n"
        found = lint_source(src, "fingerprint-axis")
        assert len(found) == 1 and "PAYLOAD_OPTIONAL_AXES" in found[0].message

    def test_real_spec_module_is_clean(self):
        from pathlib import Path

        import repro.runner.spec as spec_module

        source = Path(spec_module.__file__).read_text()
        assert lint_source(source, "fingerprint-axis", module="repro.runner.spec") == []

    def test_non_spec_files_ignored(self):
        assert lint_source("x = 1\n", "fingerprint-axis") == []


# ----------------------------------------------------------------------
# handler-purity
# ----------------------------------------------------------------------
class TestHandlerPurity:
    def test_subscribed_method_calling_publish_flagged(self):
        src = _src(
            """
            class Policy:
                def prepare(self, system) -> None:
                    system.bus.subscribe(object, self._on_event)

                def _on_event(self, event) -> None:
                    self.system.publish(event)
            """
        )
        found = lint_source(src, "handler-purity", module="repro.policies.custom")
        assert len(found) == 1 and "publish" in found[0].message

    def test_handler_heappush_and_heap_access_flagged(self):
        src = _src(
            """
            import heapq

            def on_event(event) -> None:
                heapq.heappush(event.sim._heap, (0.0, 0, event))

            bus.subscribe(object, on_event)
            """
        )
        found = lint_source(src, "handler-purity", module="repro.policies.custom")
        assert {("heap" in f.message or "_heap" in f.message) for f in found} == {True}
        assert len(found) == 2  # the call and the _heap attribute

    def test_lambda_handler_checked(self):
        src = "bus.subscribe(object, lambda e: bus.publish(e))\n"
        found = lint_source(src, "handler-purity", module="repro.policies.custom")
        assert len(found) == 1 and "lambda" in found[0].message

    def test_unsubscribed_function_not_checked(self):
        src = _src(
            """
            def republish(bus, event) -> None:
                bus.publish(event)
            """
        )
        assert lint_source(src, "handler-purity", module="repro.policies.custom") == []

    def test_pure_observer_lambda_ok(self):
        src = "bus.subscribe(object, lambda e: counts.update([e.kind]))\n"
        assert lint_source(src, "handler-purity", module="repro.policies.observers") == []


# ----------------------------------------------------------------------
# engine-seam
# ----------------------------------------------------------------------
class TestEngineSeam:
    def test_foreign_heap_access_flagged(self):
        src = "def f(sim) -> int:\n    return len(sim._heap)\n"
        found = lint_source(src, "engine-seam", module="repro.policies.custom")
        assert len(found) == 1 and "_heap" in found[0].message

    def test_all_private_attrs_covered(self):
        src = _src(
            """
            def f(sim) -> None:
                sim._sequence = None
                sim._events_processed += 1
                sim._compact_at = 3
            """
        )
        assert len(lint_source(src, "engine-seam", module="repro.runner.executor")) == 3

    def test_own_private_state_allowed(self):
        src = _src(
            """
            class Thing:
                def __init__(self) -> None:
                    self._heap = []
                    self._sequence = 0
            """
        )
        assert lint_source(src, "engine-seam", module="repro.kv.prefix") == []

    def test_sim_package_exempt(self):
        rule = get_rule("engine-seam")
        assert not rule.applies("repro.sim.engine")
        assert not rule.applies("repro.sim.simulator")
        assert rule.applies("repro.core.system")
        assert rule.applies(None)


# ----------------------------------------------------------------------
# float-accum
# ----------------------------------------------------------------------
class TestFloatAccum:
    def test_float_comprehension_sum_flagged(self):
        src = "total = sum(r.busy_seconds for r in reports)\n"
        found = lint_source(src, "float-accum", module="repro.metrics.report")
        assert len(found) == 1 and "fsum" in found[0].message

    def test_integer_count_sum_not_flagged(self):
        src = "count = sum(1 for r in requests if r.done)\n"
        assert lint_source(src, "float-accum", module="repro.metrics.report") == []

    def test_int_counter_name_containing_ratio_not_flagged(self):
        # "migrations" contains the substring "ratio"; token matching
        # must not trip on it.
        src = "n = sum(r.migrations for r in reports)\n"
        assert lint_source(src, "float-accum", module="repro.metrics.report") == []

    def test_fsum_not_flagged(self):
        src = "import math\ntotal = math.fsum(r.seconds for r in reports)\n"
        assert lint_source(src, "float-accum", module="repro.metrics.collector") == []

    def test_scoped_to_metrics(self):
        rule = get_rule("float-accum")
        assert rule.applies("repro.metrics.report")
        assert not rule.applies("repro.policies.slinfer")


# ----------------------------------------------------------------------
# typed-defs
# ----------------------------------------------------------------------
class TestTypedDefs:
    def test_missing_annotations_flagged_once_per_function(self):
        src = _src(
            """
            def bad(a, b):
                return a + b
            """
        )
        found = lint_source(src, "typed-defs", module="repro.analysis.custom")
        assert len(found) == 1
        assert "a, b" in found[0].message and "return" in found[0].message

    def test_fully_annotated_passes(self):
        src = _src(
            """
            def good(a: int, *args: str, flag: bool = False, **kw: object) -> int:
                return a

            class C:
                def __init__(self, x: int):
                    self.x = x
            """
        )
        assert lint_source(src, "typed-defs", module="repro.analysis.custom") == []

    def test_scoped_to_strict_packages(self):
        rule = get_rule("typed-defs")
        assert rule.applies("repro.analysis.rules")
        assert not rule.applies("repro.policies.slinfer")

    def test_analysis_package_is_clean(self):
        from repro.analysis.engine import run_lint

        report = run_lint(["src/repro/analysis"], rules=["typed-defs"])
        assert report.findings == []
