"""Seeded lint fixture: exactly one violation of every shipped rule.

The acceptance test pins ``repro lint`` to produce precisely one
finding per rule id on this file — a new rule must add its seeded
violation here, and a rule regression (over- or under-matching) shows
up as a count change.
"""

import random
import time


class _Bus:
    def subscribe(self, kind: type, handler: object) -> None: ...

    def publish(self, event: object) -> None: ...


BUS = _Bus()


def stamp() -> float:
    return time.perf_counter()  # no-wall-clock


def jitter() -> float:
    return random.random()  # no-ambient-rng


def ordered_sum(items: set) -> int:
    total = 0
    for value in items:  # unordered-iteration
        total += value
    return total


def total_seconds(durations: "list[float]") -> float:
    return sum(d / 2 for d in durations)  # float-accum


def on_complete(event: object) -> None:
    BUS.publish(event)  # handler-purity: re-enters publish mid-delivery


BUS.subscribe(object, on_complete)


def sneak_event(sim: object, item: object) -> None:
    sim._heap.append(item)  # engine-seam


def untyped(value):  # typed-defs
    return value


PAYLOAD_OPTIONAL_AXES: "dict[str, object]" = {}
FINGERPRINT_EXEMPT_AXES: "frozenset[str]" = frozenset()


class RunSpec:
    system: str = "slinfer"
    color: str = "red"  # fingerprint-axis: never serialized

    def to_dict(self) -> "dict[str, object]":
        return {"system": self.system}

    def fingerprint(self) -> str:
        return str(sorted(self.to_dict().items()))
