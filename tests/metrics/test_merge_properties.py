"""Algebraic laws of ``merge_run_reports``: associativity, commutativity.

The federation leans on the merge being a proper monoid fold: shard
reports are merged in shard order on the host, sub-federations could be
merged first, and a single-shard fleet must pass through the merge
unchanged.  These laws are proven here on *real* reports — seeded-random
tiny workloads simulated end to end — in both metrics modes, so every
report component (histograms, sketches, counters, ledgers) is covered
by the property, not just the scalar sums.

Randomness is a seeded ``numpy`` generator (deterministic test IDs, no
health-check flakiness): each trial draws new arrival patterns, but the
same trial always draws the same ones.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.hardware import Cluster
from repro.metrics.report import RunReport, merge_run_reports
from repro.registry import system_factory

from tests.systems.helpers import tiny_workload

TRIALS = 3


def _random_report(rng: np.random.Generator, metrics: str) -> RunReport:
    count = int(rng.integers(3, 12))
    names = [f"m{i}" for i in range(int(rng.integers(1, 4)))]
    arrivals = [
        (
            names[int(rng.integers(0, len(names)))],
            float(np.round(rng.uniform(0.0, 60.0), 3)),
            int(rng.integers(32, 512)),
            int(rng.integers(4, 64)),
        )
        for _ in range(count)
    ]
    arrivals.sort(key=lambda a: a[1])
    system = system_factory("slinfer")(
        Cluster.build(cpu_count=1, gpu_count=1), metrics=metrics
    )
    return system.run(tiny_workload(arrivals, duration=90.0))


def _round_floats(obj):
    """Round every float to 12 significant digits, recursively.

    Summation order is not associative in IEEE floats: merging in a
    different order reassociates the sketches' running totals, changing
    the last bits.  The commutativity law is therefore stated up to
    float reassociation — 12 significant digits, far below any
    metric's meaningful precision."""
    if isinstance(obj, float):
        return float(f"{obj:.12g}")
    if isinstance(obj, list):
        return [_round_floats(item) for item in obj]
    if isinstance(obj, dict):
        return {key: _round_floats(value) for key, value in obj.items()}
    return obj


def _canonical(report: RunReport, normalize_order: bool = False) -> str:
    """Canonical JSON; optionally order-normalized.

    The exact-mode request ledger and the raw sample traces concatenate
    in merge order (shard order is part of the presentation), so the
    commutativity law holds on their *multisets*: those lists are sorted
    before comparing.  Every aggregate field compares untouched (up to
    float reassociation, see :func:`_round_floats`).
    """
    payload = report.to_dict(include_volatile=False)
    if normalize_order:
        payload = _round_floats(payload)
        if "requests" in payload:
            payload["requests"] = sorted(
                payload["requests"], key=lambda r: json.dumps(r, sort_keys=True)
            )
        if "kv_utilization_samples" in payload:
            payload["kv_utilization_samples"] = sorted(payload["kv_utilization_samples"])
        if "memory_samples" in payload:
            payload["memory_samples"] = {
                key: sorted(values)
                for key, values in payload["memory_samples"].items()
            }
    return json.dumps(payload, sort_keys=True)


@pytest.mark.parametrize("metrics", ["exact", "streaming"])
@pytest.mark.parametrize("trial", range(TRIALS))
def test_merge_is_associative(trial, metrics):
    rng = np.random.default_rng(1000 + trial)
    a, b, c = (_random_report(rng, metrics) for _ in range(3))
    left = merge_run_reports([merge_run_reports([a, b]), c])
    right = merge_run_reports([a, merge_run_reports([b, c])])
    flat = merge_run_reports([a, b, c])
    assert _canonical(left) == _canonical(right) == _canonical(flat)


@pytest.mark.parametrize("metrics", ["exact", "streaming"])
@pytest.mark.parametrize("trial", range(TRIALS))
def test_merge_is_commutative(trial, metrics):
    """Order-independence up to request-ledger ordering: the exact-mode
    ledger concatenates in merge order (shard order is part of the
    result's presentation), so exact reports compare with the ledger
    normalized; every aggregate — and the entire streaming report — must
    be identical outright."""
    rng = np.random.default_rng(2000 + trial)
    a, b, c = (_random_report(rng, metrics) for _ in range(3))
    forward = merge_run_reports([a, b, c])
    rotated = merge_run_reports([c, a, b])
    assert _canonical(forward, normalize_order=True) == _canonical(
        rotated, normalize_order=True
    )
    assert forward.completed_count == rotated.completed_count
    assert forward.dropped_count == rotated.dropped_count
    assert forward.total_requests == rotated.total_requests


@pytest.mark.parametrize("metrics", ["exact", "streaming"])
def test_merge_of_one_is_identity(metrics):
    """The 1-shard federation rides on this: merging a single report
    must reproduce it exactly (this is why ``fleet1`` parity can hold
    byte for byte)."""
    rng = np.random.default_rng(3000)
    report = _random_report(rng, metrics)
    assert _canonical(merge_run_reports([report])) == _canonical(report)
