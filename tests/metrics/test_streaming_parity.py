"""Streaming-vs-exact cross-check on every registered scenario.

The trajectory of a run is observer-independent, so counters must match
*exactly* between the two metrics modes, and streaming percentiles must
track exact ones within the 1 % acceptance tolerance — on every
scenario, including the two long-horizon ones (which this test also
proves run to completion under streaming mode at smoke scale)."""

import pytest

from repro.registry import SCENARIOS
from repro.runner import RunSpec, build_workload, execute_spec

#: tolerance from the acceptance criteria (sketch alpha is 0.5 %)
REL_TOL = 0.01

AXES = dict(system="slinfer", n_models=4, cluster="small", seed=3, scale="smoke")


def _run_both(scenario):
    exact_spec = RunSpec(scenario=scenario, **AXES)
    stream_spec = RunSpec(scenario=scenario, metrics="streaming", **AXES)
    workload = build_workload(exact_spec)
    exact = execute_spec(exact_spec, workload=workload).report
    streaming = execute_spec(stream_spec, workload=workload).report
    return exact, streaming


@pytest.mark.parametrize("scenario", SCENARIOS.names())
def test_streaming_matches_exact_on_scenario(scenario):
    exact, streaming = _run_both(scenario)

    # Counters are trajectory facts: identical, not approximate.
    assert streaming.total_requests == exact.total_requests
    assert streaming.completed_count == exact.completed_count
    assert streaming.dropped_count == exact.dropped_count
    assert streaming.slo_met_count == exact.slo_met_count
    assert streaming.node_seconds_cpu == exact.node_seconds_cpu
    assert streaming.node_seconds_gpu == exact.node_seconds_gpu
    assert streaming.batch_histogram == exact.batch_histogram
    assert streaming.decode_tokens_cpu == exact.decode_tokens_cpu
    assert streaming.decode_tokens_gpu == exact.decode_tokens_gpu
    assert streaming.events_processed == exact.events_processed

    # Distributions: same sample counts, percentiles within 1 % relative.
    pairs = [
        ("ttft", exact.ttft_cdf(), streaming.ttft_cdf()),
        ("memory", exact.memory_utilization_cdf(), streaming.memory_utilization_cdf()),
        ("kv", exact.kv_utilization_cdf(), streaming.kv_utilization_cdf()),
    ]
    for name, exact_cdf, streaming_cdf in pairs:
        assert len(streaming_cdf) == len(exact_cdf), name
        if exact_cdf.empty:
            continue
        for q in (50.0, 90.0, 99.0):
            want = exact_cdf.percentile(q)
            got = streaming_cdf.percentile(q)
            assert got == pytest.approx(want, rel=REL_TOL), f"{name} p{q}"
        assert streaming_cdf.mean == pytest.approx(exact_cdf.mean, rel=1e-9), name


@pytest.mark.parametrize("scenario", ["diurnal-week", "million-burst"])
def test_long_horizon_scenarios_complete_under_streaming(scenario):
    spec = RunSpec(scenario=scenario, metrics="streaming", **AXES)
    result = execute_spec(spec)
    report = result.report
    assert report.metrics_mode == "streaming"
    assert report.total_requests > 0
    assert report.requests == []  # nothing retained
    assert report.events_processed > 0
