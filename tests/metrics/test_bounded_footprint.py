"""CI bounded-footprint smoke test (tracemalloc).

Streaming-mode collector memory must be O(1) in the request/sample
count: growing the stream 10x must not grow the peak footprint
meaningfully, while exact mode's peak (which retains everything) grows
linearly.  This is the guard that keeps the long-horizon scenarios
feasible."""

import tracemalloc

from repro.engine.request import Request
from repro.hardware.specs import HardwareKind
from repro.metrics import MetricsCollector


def _drive(mode: str, n: int) -> int:
    """Feed ``n`` request lifecycles + samples; return the peak footprint
    attributable to the loop (bytes)."""
    collector = MetricsCollector(mode=mode)
    tracemalloc.start()
    try:
        for i in range(n):
            request = Request(
                req_id=i,
                deployment="d",
                arrival=float(i),
                input_len=100,
                output_len=4,
                ttft_slo=1.0,
                tpot_slo=0.25,
            )
            collector.register_request(request)
            request.record_tokens(float(i) + 0.5)
            for _ in range(3):
                request.record_tokens(float(i) + 0.8)
            request.complete(float(i) + 0.8)
            collector.request_finished(request)
            collector.sample_memory_utilization(HardwareKind.GPU, (i % 97) / 100.0)
            collector.sample_kv_utilization((i % 89) / 100.0)
            collector.add_overhead("placement", 1e-4)
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    report = collector.finalize(now=float(n), duration=float(n), system="t")
    assert report.total_requests == n
    return peak


def test_streaming_footprint_is_flat_in_request_count():
    small = _drive("streaming", 2_000)
    large = _drive("streaming", 20_000)
    # O(1): 10x the stream may not even double the peak (sketch buckets
    # saturate; the per-iteration request object is released each time).
    assert large < 2 * small, f"streaming peak grew {small} -> {large}"


def test_streaming_footprint_beats_exact_by_a_wide_margin():
    n = 20_000
    streaming = _drive("streaming", n)
    exact = _drive("exact", n)
    # Exact retains all n Request objects + samples; streaming retains
    # in-flight state only.  5x is a deliberately loose floor — the real
    # ratio is far larger and grows with n.
    assert streaming * 5 < exact, f"streaming={streaming} exact={exact}"
