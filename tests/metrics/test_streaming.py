"""The bounded-memory streaming accumulators: sketch accuracy, merging,
serialization, and the collector's streaming mode."""

import numpy as np
import pytest

from repro.engine.request import Request
from repro.hardware.specs import HardwareKind
from repro.metrics import MetricsCollector, QuantileSketch, RequestAggregate, StreamingStat
from repro.metrics.report import RunReport


def make_request(req_id=0, arrival=0.0, input_len=100, output_len=5):
    return Request(
        req_id=req_id,
        deployment="d",
        arrival=arrival,
        input_len=input_len,
        output_len=output_len,
        ttft_slo=1.0,
        tpot_slo=0.25,
    )


# ----------------------------------------------------------------------
# StreamingStat
# ----------------------------------------------------------------------
def test_streaming_stat_moments_and_merge():
    left, right = StreamingStat(), StreamingStat()
    for v in (1.0, 5.0, 3.0):
        left.add(v)
    for v in (0.5, 9.0):
        right.add(v)
    left.merge(right)
    assert left.count == 5
    assert left.total == pytest.approx(18.5)
    assert left.minimum == 0.5
    assert left.maximum == 9.0
    assert left.mean == pytest.approx(3.7)


def test_streaming_stat_empty_mean_raises():
    with pytest.raises(ValueError):
        StreamingStat().mean


# ----------------------------------------------------------------------
# QuantileSketch: accuracy
# ----------------------------------------------------------------------
@pytest.mark.parametrize("distribution", ["lognormal", "uniform", "exponential"])
def test_sketch_percentiles_within_relative_error(distribution):
    rng = np.random.default_rng(7)
    if distribution == "lognormal":
        values = rng.lognormal(mean=0.0, sigma=1.5, size=20_000)
    elif distribution == "uniform":
        values = rng.uniform(0.001, 50.0, size=20_000)
    else:
        values = rng.exponential(scale=3.0, size=20_000)
    sketch = QuantileSketch.from_values(values)
    for q in (1.0, 10.0, 50.0, 90.0, 99.0, 99.9):
        exact = float(np.percentile(values, q))
        assert sketch.percentile(q) == pytest.approx(exact, rel=0.011)
    assert sketch.mean == pytest.approx(float(values.mean()), rel=1e-9)
    assert sketch.percentile(0.0) == pytest.approx(float(values.min()))
    assert sketch.percentile(100.0) == pytest.approx(float(values.max()))


def test_sketch_fraction_below_tracks_exact():
    rng = np.random.default_rng(11)
    values = np.sort(rng.exponential(scale=2.0, size=10_000))
    sketch = QuantileSketch.from_values(values)
    for threshold in (0.1, 1.0, 2.0, 10.0):
        exact = float(np.searchsorted(values, threshold, side="right") / len(values))
        assert sketch.fraction_below(threshold) == pytest.approx(exact, abs=0.02)
    assert sketch.fraction_below(values.max() + 1.0) == 1.0
    assert sketch.fraction_below(values.min() / 2.0) == 0.0


def test_sketch_handles_zeros_and_rejects_negatives():
    sketch = QuantileSketch.from_values([0.0, 0.0, 1.0, 2.0])
    assert len(sketch) == 4
    assert sketch.percentile(0.0) == 0.0
    assert sketch.percentile(100.0) == 2.0
    with pytest.raises(ValueError):
        sketch.add(-1.0)


def test_sketch_empty_contract_matches_cdf():
    sketch = QuantileSketch()
    assert sketch.empty and len(sketch) == 0
    assert sketch.curve() == []
    for stat in ("percentile", "fraction_below"):
        with pytest.raises(ValueError):
            getattr(sketch, stat)(50.0)
    with pytest.raises(ValueError):
        sketch.mean


def test_sketch_curve_is_monotone():
    sketch = QuantileSketch.from_values([5.0, 1.0, 3.0, 0.2, 9.0])
    curve = sketch.curve(points=20)
    values = [v for v, _ in curve]
    fractions = [f for _, f in curve]
    assert values == sorted(values)
    assert fractions[0] == 0.0 and fractions[-1] == 1.0


# ----------------------------------------------------------------------
# QuantileSketch: bounded memory, merging, serialization
# ----------------------------------------------------------------------
def test_sketch_bucket_count_is_bounded():
    sketch = QuantileSketch(max_bins=64)
    rng = np.random.default_rng(3)
    for value in rng.lognormal(mean=0.0, sigma=4.0, size=50_000):
        sketch.add(float(value))
    assert sketch.bin_count <= 65  # bins cap + zero bucket
    assert len(sketch) == 50_000


def test_sketch_merge_matches_single_pass():
    rng = np.random.default_rng(5)
    values = rng.exponential(scale=1.0, size=9_000)
    whole = QuantileSketch.from_values(values)
    parts = [QuantileSketch.from_values(chunk) for chunk in np.split(values, 3)]
    merged = QuantileSketch()
    for part in parts:
        merged.merge(part)
    merged_payload, whole_payload = merged.to_dict(), whole.to_dict()
    # Bucket state is bit-identical; the float sum only differs by
    # addition order (per-chunk partials vs one pass).
    assert merged_payload["bins"] == whole_payload["bins"]
    assert merged_payload["zero_count"] == whole_payload["zero_count"]
    assert merged_payload["stat"]["count"] == whole_payload["stat"]["count"]
    assert merged_payload["stat"]["min"] == whole_payload["stat"]["min"]
    assert merged_payload["stat"]["max"] == whole_payload["stat"]["max"]
    assert merged_payload["stat"]["total"] == pytest.approx(
        whole_payload["stat"]["total"], rel=1e-12
    )
    for q in (50.0, 99.0):
        assert merged.percentile(q) == whole.percentile(q)


def test_sketch_merge_is_associative():
    rng = np.random.default_rng(13)
    chunks = [rng.uniform(0.01, 10.0, size=2_000) for _ in range(3)]
    a, b, c = (QuantileSketch.from_values(chunk) for chunk in chunks)

    left = QuantileSketch.from_dict(a.to_dict())
    left.merge(b)
    left.merge(c)

    bc = QuantileSketch.from_dict(b.to_dict())
    bc.merge(c)
    right = QuantileSketch.from_dict(a.to_dict())
    right.merge(bc)

    left_payload, right_payload = left.to_dict(), right.to_dict()
    # Integer state (bucket counts) is bit-identical under any grouping.
    assert left_payload["bins"] == right_payload["bins"]
    assert left_payload["zero_count"] == right_payload["zero_count"]
    assert left.percentile(99.0) == right.percentile(99.0)
    assert left.mean == pytest.approx(right.mean, rel=1e-12)


def test_sketch_merge_rejects_mismatched_accuracy():
    with pytest.raises(ValueError):
        QuantileSketch(alpha=0.005).merge(QuantileSketch(alpha=0.01))


def test_sketch_serialization_round_trip():
    sketch = QuantileSketch.from_values([0.0, 0.5, 1.0, 7.0, 7.0, 100.0])
    restored = QuantileSketch.from_dict(sketch.to_dict())
    assert restored.to_dict() == sketch.to_dict()
    assert restored.percentile(90.0) == sketch.percentile(90.0)
    empty = QuantileSketch.from_dict(QuantileSketch().to_dict())
    assert empty.empty


# ----------------------------------------------------------------------
# Streaming collector mode
# ----------------------------------------------------------------------
def test_collector_rejects_unknown_mode():
    with pytest.raises(ValueError):
        MetricsCollector(mode="approximate")


def _finished_request(req_id, ttft=0.5):
    request = make_request(req_id)
    request.record_tokens(ttft)
    for _ in range(4):
        request.record_tokens(ttft + 0.1)
    request.complete(ttft + 0.1)
    return request


def test_streaming_collector_folds_outcomes_without_retaining_requests():
    collector = MetricsCollector(mode="streaming")
    for i in range(10):
        request = _finished_request(i, ttft=0.1 * (i + 1))
        collector.register_request(request)
        collector.request_finished(request)
    dropped = make_request(10)
    collector.register_request(dropped)
    dropped.drop(1.0)
    collector.request_finished(dropped)
    # Double-fold is a no-op.
    collector.request_finished(dropped)
    assert collector.requests == []
    report = collector.finalize(now=5.0, duration=5.0, system="t")
    assert report.metrics_mode == "streaming"
    assert report.total_requests == 11
    assert report.completed_count == 10
    assert report.dropped_count == 1
    assert report.slo_met_count == 10
    assert len(report.ttft_cdf()) == 10


def test_streaming_collector_folds_in_flight_requests_at_finalize():
    collector = MetricsCollector(mode="streaming")
    finished = _finished_request(0)
    collector.register_request(finished)
    collector.request_finished(finished)
    in_flight = make_request(1)
    in_flight.record_tokens(0.9)  # produced a first token, never completed
    collector.register_request(in_flight)
    report = collector.finalize(now=2.0, duration=2.0, system="t")
    assert report.total_requests == 2
    assert report.completed_count == 1
    assert len(report.ttft_cdf()) == 2  # the in-flight TTFT is counted


def test_streaming_finalize_is_idempotent():
    collector = MetricsCollector(mode="streaming")
    collector.register_request(_finished_request(0))
    collector.register_request(make_request(1))  # stays pending
    collector.node_loaded("gpu-0", HardwareKind.GPU, 0.0)
    first = collector.finalize(now=4.0, duration=4.0, system="t")
    second = collector.finalize(now=4.0, duration=4.0, system="t")
    assert first.to_dict() == second.to_dict()


def test_streaming_report_exact_only_views_raise():
    collector = MetricsCollector(mode="streaming")
    collector.register_request(_finished_request(0))
    report = collector.finalize(now=1.0, duration=1.0, system="t")
    with pytest.raises(RuntimeError, match="streaming"):
        report.completed


def test_streaming_report_serialization_round_trip():
    collector = MetricsCollector(mode="streaming")
    request = _finished_request(0)
    collector.register_request(request)
    collector.request_finished(request)
    collector.sample_memory_utilization(HardwareKind.GPU, 0.5)
    collector.sample_kv_utilization(0.25)
    collector.node_loaded("gpu-0", HardwareKind.GPU, 0.0)
    collector.node_unloaded("gpu-0", 8.0)
    report = collector.finalize(now=10.0, duration=10.0, system="t")
    restored = RunReport.from_dict(report.to_dict())
    assert restored.metrics_mode == "streaming"
    assert restored.total_requests == 1
    assert restored.ttft_cdf().percentile(50.0) == report.ttft_cdf().percentile(50.0)
    assert restored.memory_utilization_cdf().mean == pytest.approx(0.5)
    assert restored.kv_utilization_cdf().mean == pytest.approx(0.25)
    assert restored.to_dict() == report.to_dict()


def test_request_aggregate_round_trip_and_merge():
    left, right = RequestAggregate(), RequestAggregate()
    for i in range(3):
        request = _finished_request(i)
        left.arrivals += 1
        left.fold(request)
    right.arrivals += 2
    right.fold(_finished_request(3))
    left.merge(right)
    assert left.arrivals == 5
    assert left.completed == 4
    restored = RequestAggregate.from_dict(left.to_dict())
    assert restored.to_dict() == left.to_dict()
