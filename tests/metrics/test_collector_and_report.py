"""Tests for metrics collection and report derivation."""

import pytest

from repro.engine.request import Request
from repro.hardware.specs import HardwareKind
from repro.metrics import Cdf, MetricsCollector


def make_request(req_id=0, arrival=0.0, input_len=100, output_len=5):
    return Request(
        req_id=req_id,
        deployment="d",
        arrival=arrival,
        input_len=input_len,
        output_len=output_len,
        ttft_slo=1.0,
        tpot_slo=0.25,
    )


# ----------------------------------------------------------------------
# Cdf
# ----------------------------------------------------------------------
def test_cdf_fraction_below():
    cdf = Cdf.from_values([1.0, 2.0, 3.0, 4.0])
    assert cdf.fraction_below(2.5) == 0.5
    assert cdf.fraction_below(0.5) == 0.0
    assert cdf.fraction_below(10.0) == 1.0


def test_cdf_percentiles_and_stats():
    cdf = Cdf.from_values(range(101))
    assert cdf.median == 50.0
    assert cdf.percentile(90) == pytest.approx(90.0)
    assert cdf.mean == pytest.approx(50.0)


def test_cdf_empty_behaviour():
    """Unified empty contract: every statistic raises, only curve() is
    lenient (an empty plot is an empty list)."""
    cdf = Cdf.from_values([])
    assert cdf.empty
    with pytest.raises(ValueError):
        cdf.fraction_below(1.0)
    with pytest.raises(ValueError):
        cdf.percentile(50)
    with pytest.raises(ValueError):
        cdf.mean
    assert cdf.curve() == []


def test_cdf_curve_matches_per_point_percentiles():
    cdf = Cdf.from_values([4.0, 1.0, 9.0, 2.5, 7.0])
    curve = cdf.curve(points=11)
    assert len(curve) == 11
    for value, fraction in curve:
        assert value == pytest.approx(cdf.percentile(100.0 * fraction))


def test_cdf_curve_monotone():
    cdf = Cdf.from_values([5.0, 1.0, 3.0])
    curve = cdf.curve(points=10)
    values = [v for v, _ in curve]
    assert values == sorted(values)


# ----------------------------------------------------------------------
# Node activity accounting
# ----------------------------------------------------------------------
def test_node_seconds_integrates_load_intervals():
    collector = MetricsCollector()
    collector.node_loaded("gpu-0", HardwareKind.GPU, 10.0)
    collector.node_unloaded("gpu-0", 25.0)
    collector.node_loaded("gpu-0", HardwareKind.GPU, 50.0)
    report = collector.finalize(now=60.0, duration=100.0, system="t")
    assert report.node_seconds_gpu == pytest.approx(15.0 + 10.0)


def test_overlapping_instances_count_once():
    collector = MetricsCollector()
    collector.node_loaded("gpu-0", HardwareKind.GPU, 0.0)
    collector.node_loaded("gpu-0", HardwareKind.GPU, 5.0)
    collector.node_unloaded("gpu-0", 10.0)
    collector.node_unloaded("gpu-0", 20.0)
    report = collector.finalize(now=30.0, duration=30.0, system="t")
    assert report.node_seconds_gpu == pytest.approx(20.0)


def test_node_seconds_clipped_to_trace_window():
    collector = MetricsCollector()
    collector.node_loaded("cpu-0", HardwareKind.CPU, 90.0)
    collector.node_unloaded("cpu-0", 150.0)
    report = collector.finalize(now=150.0, duration=100.0, system="t")
    assert report.node_seconds_cpu == pytest.approx(10.0)
    assert report.avg_nodes_used_cpu == pytest.approx(0.1)


def test_unload_without_load_raises():
    collector = MetricsCollector()
    collector.node_loaded("n", HardwareKind.CPU, 0.0)
    collector.node_unloaded("n", 1.0)
    with pytest.raises(RuntimeError):
        collector.node_unloaded("n", 2.0)


def test_unload_of_never_loaded_node_raises_runtime_error():
    """A never-loaded node is the same bookkeeping bug as an unmatched
    unload — an informative RuntimeError, not a bare KeyError."""
    collector = MetricsCollector()
    with pytest.raises(RuntimeError, match="never loaded"):
        collector.node_unloaded("ghost", 1.0)


def test_finalize_twice_yields_identical_reports():
    """Regression: finalize must not mutate node-activity state, so a
    second finalize (same instant) reproduces the first byte-for-byte —
    including a node whose busy interval is still open."""
    collector = MetricsCollector()
    collector.node_loaded("gpu-0", HardwareKind.GPU, 5.0)
    collector.node_loaded("cpu-0", HardwareKind.CPU, 0.0)
    collector.node_unloaded("cpu-0", 8.0)
    collector.register_request(make_request(0))
    first = collector.finalize(now=20.0, duration=30.0, system="t")
    second = collector.finalize(now=20.0, duration=30.0, system="t")
    assert first.to_dict() == second.to_dict()
    # The still-open gpu interval was counted without being closed:
    # later activity keeps working and extends it.
    collector.node_unloaded("gpu-0", 25.0)
    third = collector.finalize(now=30.0, duration=30.0, system="t")
    assert third.node_seconds_gpu == pytest.approx(20.0)


def test_finalize_tolerates_future_hardware_kinds():
    """node_seconds must not KeyError on kinds beyond the CPU/GPU pair
    the report itemizes (e.g. a future accelerator kind)."""

    class _FutureKind:
        value = "tpu"

    from repro.metrics.collector import _NodeActivity

    collector = MetricsCollector()
    collector.node_loaded("gpu-0", HardwareKind.GPU, 0.0)
    collector.node_unloaded("gpu-0", 10.0)
    activity = _NodeActivity(kind=_FutureKind())
    activity.on_load(0.0)
    activity.on_unload(4.0)
    collector._nodes["tpu-0"] = activity
    report = collector.finalize(now=10.0, duration=10.0, system="t")
    assert report.node_seconds_gpu == pytest.approx(10.0)
    assert report.node_seconds_cpu == 0.0


# ----------------------------------------------------------------------
# Report derivation
# ----------------------------------------------------------------------
def _report_with_requests():
    collector = MetricsCollector()
    met = make_request(0)
    met.record_tokens(0.5)
    for t in (0.7, 0.9, 1.1, 1.3):
        met.record_tokens(t)
    met.complete(1.3)
    dropped = make_request(1, arrival=0.0)
    dropped.drop(1.0)
    violated = make_request(2, arrival=0.0)
    violated.record_tokens(2.0)  # past TTFT deadline
    for t in (2.2, 2.4, 2.6, 2.8):
        violated.record_tokens(t)
    violated.complete(2.8)
    for request in (met, dropped, violated):
        collector.register_request(request)
    return collector.finalize(now=10.0, duration=10.0, system="t")


def test_slo_accounting():
    report = _report_with_requests()
    assert report.total_requests == 3
    assert report.slo_met_count == 1
    assert report.dropped_count == 1
    assert report.slo_rate == pytest.approx(1 / 3)
    assert report.slo_miss_rate == pytest.approx(2 / 3)


def test_ttft_cdf_includes_all_first_tokens():
    report = _report_with_requests()
    cdf = report.ttft_cdf()
    assert len(cdf) == 2  # the dropped request never produced a token


def test_decode_speed_per_kind():
    collector = MetricsCollector()
    collector.node_loaded("cpu-0", HardwareKind.CPU, 0.0)
    collector.node_unloaded("cpu-0", 10.0)
    collector.add_decode_tokens(HardwareKind.CPU, 500)
    report = collector.finalize(now=10.0, duration=10.0, system="t")
    assert report.decode_speed_cpu == pytest.approx(50.0)
    assert report.decode_speed_gpu == 0.0


def test_batch_statistics():
    collector = MetricsCollector()
    for batch in (1, 1, 4, 4, 4, 10):
        collector.sample_batch_size(batch)
    report = collector.finalize(now=1.0, duration=1.0, system="t")
    assert report.mean_batch_size == pytest.approx(24 / 6)
    assert report.batch_size_cdf().percentile(100) == 10


def test_overhead_stats():
    collector = MetricsCollector()
    collector.add_overhead("shadow_validation", 0.001)
    collector.add_overhead("shadow_validation", 0.003)
    report = collector.finalize(now=1.0, duration=1.0, system="t")
    stat = report.overhead_stats["shadow_validation"]
    assert stat.count == 2
    assert stat.mean_seconds == pytest.approx(0.002)


def test_report_dict_round_trip_preserves_metrics():
    collector = MetricsCollector()
    request = Request(
        req_id=0, deployment="m#000", arrival=1.0, input_len=64, output_len=8,
        ttft_slo=2.0, tpot_slo=0.2,
    )
    collector.register_request(request)
    request.record_tokens(2.0)
    for _ in range(7):
        request.record_tokens(2.5)
    request.complete(2.5)
    collector.node_loaded("gpu-0", HardwareKind.GPU, 0.0)
    collector.node_unloaded("gpu-0", 8.0)
    collector.add_decode_tokens(HardwareKind.GPU, 8)
    collector.sample_batch_size(2, HardwareKind.GPU)
    collector.sample_memory_utilization(HardwareKind.GPU, 0.5)
    collector.sample_kv_utilization(0.25)
    collector.add_overhead("placement", 0.001)
    report = collector.finalize(now=10.0, duration=10.0, system="t")
    report.wall_seconds = 1.5
    report.events_processed = 42

    from repro.metrics.report import RunReport

    restored = RunReport.from_dict(report.to_dict())
    assert restored.slo_met_count == report.slo_met_count
    assert restored.requests[0].ttft == report.requests[0].ttft
    assert restored.batch_histogram == report.batch_histogram
    assert restored.memory_samples == report.memory_samples
    assert restored.events_processed == 42
    assert restored.wall_seconds == 1.5
    assert restored.overhead_stats == report.overhead_stats
    # The canonical (deterministic) view drops the wall-clock envelope.
    canonical = report.to_dict(include_volatile=False)
    assert "wall_seconds" not in canonical and "overhead_stats" not in canonical
    assert RunReport.from_dict(canonical).wall_seconds == 0.0


def test_run_sets_wall_and_event_accounting():
    from repro.registry import build_cluster, system_factory
    from repro.runner import RunSpec, build_workload

    spec = RunSpec(system="sllm", n_models=2, duration=60.0)
    report = system_factory("sllm")(build_cluster("small")).run(build_workload(spec))
    assert report.wall_seconds > 0.0
    assert report.events_processed > 0
