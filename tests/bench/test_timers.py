"""The warmup/repeat measurement protocol."""

import pytest

from repro.bench import Measurement, Timer, measure


def test_timer_measures_elapsed_time():
    with Timer() as timer:
        pass
    assert timer.seconds >= 0.0


def test_measure_applies_warmup_and_repeats():
    calls = []

    def case():
        calls.append(1)
        return 42

    measurement = measure(case, name="toy", repeats=3, warmup=2)
    assert len(calls) == 5  # 2 warmup + 3 timed
    assert measurement.events == 42
    assert len(measurement.wall_all) == 3
    assert measurement.repeats == 3 and measurement.warmup == 2


def test_headline_numbers_use_the_best_round():
    measurement = Measurement(
        name="toy", events=100, wall_all=[0.5, 0.2, 0.4], repeats=3, warmup=0
    )
    assert measurement.wall_seconds == 0.2
    assert measurement.events_per_sec == pytest.approx(500.0)
    assert measurement.wall_mean == pytest.approx((0.5 + 0.2 + 0.4) / 3)


def test_nondeterministic_case_fails_loudly():
    counter = iter(range(100))

    def drifting():
        return next(counter)

    with pytest.raises(RuntimeError, match="not deterministic"):
        measure(drifting, name="drift", repeats=2, warmup=0)


def test_case_must_return_event_count():
    with pytest.raises(TypeError, match="event count"):
        measure(lambda: None, name="bad", repeats=1, warmup=0)


def test_to_dict_schema_fields():
    measurement = measure(lambda: 7, name="toy", repeats=2, warmup=0, meta={"k": "v"})
    payload = measurement.to_dict()
    for key in (
        "name", "events", "wall_seconds", "wall_seconds_mean",
        "wall_seconds_all", "events_per_sec", "repeats", "warmup", "meta",
    ):
        assert key in payload
    assert payload["meta"] == {"k": "v"}
