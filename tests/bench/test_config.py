"""BenchConfig: the single env seam for scale/workers/protocol."""

import pytest

from repro.bench import BenchConfig


def test_env_resolution_single_seam(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "full")
    monkeypatch.setenv("REPRO_WORKERS", "4")
    monkeypatch.setenv("REPRO_BENCH_REPEATS", "7")
    monkeypatch.setenv("REPRO_BENCH_WARMUP", "2")
    config = BenchConfig.from_env()
    assert (config.scale, config.workers, config.repeats, config.warmup) == ("full", 4, 7, 2)


def test_env_defaults_are_lenient(monkeypatch):
    for name in ("REPRO_SCALE", "REPRO_WORKERS", "REPRO_BENCH_REPEATS", "REPRO_BENCH_WARMUP"):
        monkeypatch.delenv(name, raising=False)
    config = BenchConfig.from_env()
    assert config.scale == "quick"  # runner's REPRO_SCALE default
    assert config.workers == 1
    assert config.repeats >= 1


def test_explicit_overrides_beat_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "full")
    config = BenchConfig.from_env(scale="smoke", repeats=1, warmup=0)
    assert config.scale == "smoke"
    assert config.repeats == 1
    assert config.warmup == 0


def test_none_override_means_environment(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "smoke")
    assert BenchConfig.from_env(scale=None).scale == "smoke"


def test_unknown_scale_fails_fast():
    with pytest.raises(KeyError):
        BenchConfig(scale="warp10")


def test_invalid_protocol_rejected():
    with pytest.raises(ValueError):
        BenchConfig(repeats=0)
    with pytest.raises(ValueError):
        BenchConfig(warmup=-1)


def test_duration_follows_scale():
    assert BenchConfig(scale="smoke").duration == 180.0
    assert BenchConfig(scale="full").duration == 1800.0
