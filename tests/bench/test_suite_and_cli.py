"""End-to-end: run_bench writes the trajectory; the CLI gates on it."""

import json

from repro.bench import BenchConfig, load_report, run_bench
from repro.cli import main

_FAST = {"workload-synthesis"}  # cheapest core case: trace synthesis only


def _fast_config():
    return BenchConfig(scale="smoke", repeats=1, warmup=0)


def test_run_bench_writes_core_report(tmp_path):
    outcome = run_bench(_fast_config(), out_dir=tmp_path, only=_FAST)
    assert outcome.gate_passed
    report = load_report(tmp_path / "BENCH_core.json")
    assert report["suite"] == "core"
    assert [case["name"] for case in report["cases"]] == ["workload-synthesis"]
    # --only with no scenario-* names skips the scenarios report
    assert not (tmp_path / "BENCH_scenarios.json").exists()


def test_run_bench_scenario_filter(tmp_path):
    outcome = run_bench(
        _fast_config(), out_dir=tmp_path, only={"scenario-azure"}
    )
    report = outcome.reports["BENCH_scenarios.json"]
    assert [case["name"] for case in report["cases"]] == ["scenario-azure"]
    assert report["cases"][0]["meta"]["requests"] > 0
    # A scenario-only run must not write (and overwrite!) the core report.
    assert "BENCH_core.json" not in outcome.reports
    assert not (tmp_path / "BENCH_core.json").exists()


def test_filtered_gate_ignores_deliberately_skipped_cases(tmp_path):
    """--only core-loop --baseline <full baseline> must not fail on the
    five cases the filter skipped — only the cases that ran are gated."""
    full_baseline = {
        "schema_version": 1,
        "suite": "core",
        "scale": "smoke",
        "cases": [
            {"name": "workload-synthesis", "events_per_sec": 1.0},  # trivially met
            {"name": "core-loop", "events_per_sec": 1e15},  # skipped by the filter
            {"name": "queue-churn", "events_per_sec": 1e15},  # skipped by the filter
        ],
    }
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(full_baseline))
    outcome = run_bench(
        _fast_config(), out_dir=tmp_path, only=_FAST, baseline=baseline_path
    )
    assert outcome.gate_passed


def test_gate_passes_against_own_output(tmp_path):
    run_bench(_fast_config(), out_dir=tmp_path, only=_FAST)
    outcome = run_bench(
        _fast_config(),
        out_dir=tmp_path / "second",
        only=_FAST,
        baseline=tmp_path / "BENCH_core.json",
        max_regression=0.25,
    )
    assert outcome.gate_passed


def test_gate_fails_against_impossible_baseline(tmp_path):
    run_bench(_fast_config(), out_dir=tmp_path, only=_FAST)
    baseline_path = tmp_path / "BENCH_core.json"
    baseline = json.loads(baseline_path.read_text())
    baseline["cases"][0]["events_per_sec"] = 1e15  # unreachable
    baseline_path.write_text(json.dumps(baseline))
    outcome = run_bench(
        _fast_config(),
        out_dir=tmp_path / "second",
        only=_FAST,
        baseline=baseline_path,
        max_regression=0.25,
    )
    assert not outcome.gate_passed
    assert outcome.regressions[0].name == "workload-synthesis"


def test_cli_bench_writes_reports_and_exits_zero(tmp_path, capsys):
    code = main(
        [
            "bench",
            "--scale", "smoke",
            "--repeats", "1",
            "--warmup", "0",
            "--only", "workload-synthesis",
            "--out", str(tmp_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "workload-synthesis" in out
    assert (tmp_path / "BENCH_core.json").exists()


def test_cli_bench_gate_exit_code(tmp_path):
    assert (
        main(
            [
                "bench", "--scale", "smoke", "--repeats", "1", "--warmup", "0",
                "--only", "workload-synthesis", "--out", str(tmp_path),
            ]
        )
        == 0
    )
    baseline_path = tmp_path / "BENCH_core.json"
    baseline = json.loads(baseline_path.read_text())
    baseline["cases"][0]["events_per_sec"] = 1e15
    baseline_path.write_text(json.dumps(baseline))
    code = main(
        [
            "bench", "--scale", "smoke", "--repeats", "1", "--warmup", "0",
            "--only", "workload-synthesis", "--out", str(tmp_path / "second"),
            "--baseline", str(baseline_path),
        ]
    )
    assert code == 3


def test_unknown_only_case_fails_fast(tmp_path):
    import pytest

    with pytest.raises(ValueError, match="unknown bench case"):
        run_bench(_fast_config(), out_dir=tmp_path, only={"core-lop"})  # typo
    assert not (tmp_path / "BENCH_core.json").exists()


def test_cli_unknown_only_case_exits_two(tmp_path, capsys):
    code = main(
        ["bench", "--scale", "smoke", "--only", "core-lop", "--out", str(tmp_path)]
    )
    assert code == 2
    assert "unknown bench case" in capsys.readouterr().err


def test_baseline_with_scenario_only_filter_is_an_error(tmp_path):
    import pytest

    run_bench(_fast_config(), out_dir=tmp_path, only=_FAST)
    with pytest.raises(ValueError, match="filtered every core case"):
        run_bench(
            _fast_config(),
            out_dir=tmp_path / "second",
            only={"scenario-azure"},
            baseline=tmp_path / "BENCH_core.json",
        )


def test_scale_mismatched_baseline_is_an_error(tmp_path):
    import pytest

    run_bench(_fast_config(), out_dir=tmp_path, only=_FAST)
    baseline_path = tmp_path / "BENCH_core.json"
    baseline = json.loads(baseline_path.read_text())
    baseline["scale"] = "quick"
    baseline_path.write_text(json.dumps(baseline))
    with pytest.raises(ValueError, match="scale mismatch"):
        run_bench(
            _fast_config(),
            out_dir=tmp_path / "second",
            only=_FAST,
            baseline=baseline_path,
        )


def test_scenario_only_with_skip_scenarios_is_an_error(tmp_path, capsys):
    code = main(
        [
            "bench", "--scale", "smoke", "--only", "scenario-azure",
            "--skip-scenarios", "--out", str(tmp_path),
        ]
    )
    assert code == 2
    assert "nothing to run" in capsys.readouterr().err
    assert list(tmp_path.iterdir()) == []


def test_cli_missing_baseline_file_exits_two(tmp_path, capsys):
    code = main(
        [
            "bench", "--scale", "smoke", "--repeats", "1", "--warmup", "0",
            "--only", "workload-synthesis", "--out", str(tmp_path),
            "--baseline", str(tmp_path / "does-not-exist.json"),
        ]
    )
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_core_suite_covers_the_acceptance_cases():
    from repro.bench import CORE_CASES

    assert len(CORE_CASES) >= 5
    assert "core-loop" in CORE_CASES


def test_profile_writes_pstats_next_to_reports(tmp_path):
    import pstats

    config = BenchConfig(scale="smoke", repeats=1, warmup=0, profile=True)
    run_bench(config, out_dir=tmp_path, only=_FAST)
    path = tmp_path / "profile_workload-synthesis.pstats"
    assert path.exists()
    # The dump must be a loadable pstats file with real samples in it.
    stats = pstats.Stats(str(path))
    assert stats.total_calls > 0


def test_profile_off_by_default(tmp_path):
    run_bench(_fast_config(), out_dir=tmp_path, only=_FAST)
    assert not list(tmp_path.glob("*.pstats"))


def test_profile_env_seam(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_PROFILE", "1")
    assert BenchConfig.from_env().profile
    monkeypatch.setenv("REPRO_BENCH_PROFILE", "0")
    assert not BenchConfig.from_env().profile
    monkeypatch.delenv("REPRO_BENCH_PROFILE")
    assert not BenchConfig.from_env().profile


def test_cli_bench_profile_flag(tmp_path):
    code = main(
        [
            "bench",
            "--scale", "smoke",
            "--repeats", "1",
            "--warmup", "0",
            "--only", "workload-synthesis",
            "--profile",
            "--out", str(tmp_path),
        ]
    )
    assert code == 0
    assert (tmp_path / "profile_workload-synthesis.pstats").exists()


def test_engine_vectorized_is_a_core_case():
    from repro.bench.cases import CORE_CASES

    assert "engine-vectorized" in CORE_CASES
