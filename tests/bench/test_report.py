"""Bench report schema, round-trip, and the baseline regression gate."""

import json

import pytest

from repro.bench import (
    BenchConfig,
    Measurement,
    build_report,
    compare_reports,
    load_report,
    write_report,
)


def _measurement(name, events=1000, wall=0.5):
    return Measurement(name=name, events=events, wall_all=[wall], repeats=1, warmup=0)


def _report(cases, commit="abc1234"):
    config = BenchConfig(scale="smoke", repeats=1, warmup=0)
    return build_report("core", config, cases, commit=commit)


def test_report_schema_and_roundtrip(tmp_path):
    report = _report([_measurement("core-loop"), _measurement("event-bus-publish")])
    assert report["schema_version"] == 1
    assert report["suite"] == "core"
    assert report["commit"] == "abc1234"
    assert report["scale"] == "smoke"
    assert {"python", "numpy", "platform"} <= set(report["environment"])
    assert [case["name"] for case in report["cases"]] == ["core-loop", "event-bus-publish"]
    for case in report["cases"]:
        assert {"wall_seconds", "events", "events_per_sec"} <= set(case)

    path = write_report(report, tmp_path / "BENCH_core.json")
    assert load_report(path) == json.loads(path.read_text())


def test_unsupported_schema_version_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema_version": 99, "cases": []}))
    with pytest.raises(ValueError, match="schema version"):
        load_report(path)


def test_gate_passes_within_tolerance():
    baseline = _report([_measurement("core-loop", events=1000, wall=1.0)])  # 1000 ev/s
    current = _report([_measurement("core-loop", events=1000, wall=1.25)])  # 800 ev/s
    assert compare_reports(current, baseline, max_regression=0.25) == []


def test_gate_fails_past_tolerance():
    baseline = _report([_measurement("core-loop", events=1000, wall=1.0)])
    current = _report([_measurement("core-loop", events=1000, wall=2.0)])  # 0.5x
    regressions = compare_reports(current, baseline, max_regression=0.25)
    assert [r.name for r in regressions] == ["core-loop"]
    assert regressions[0].ratio == pytest.approx(0.5)
    assert "core-loop" in regressions[0].describe()


def test_gate_flags_missing_cases_but_ignores_new_ones():
    baseline = _report([_measurement("core-loop"), _measurement("queue-churn")])
    current = _report([_measurement("core-loop"), _measurement("brand-new-case")])
    regressions = compare_reports(current, baseline, max_regression=0.25)
    assert [r.name for r in regressions] == ["queue-churn"]
    assert regressions[0].current_events_per_sec == 0.0
    assert "missing" in regressions[0].describe()


def test_gate_rejects_nonsense_tolerance():
    report = _report([_measurement("x")])
    with pytest.raises(ValueError):
        compare_reports(report, report, max_regression=1.5)


def test_improvements_never_trip_the_gate():
    baseline = _report([_measurement("core-loop", events=1000, wall=1.0)])
    current = _report([_measurement("core-loop", events=1000, wall=0.1)])  # 10x faster
    assert compare_reports(current, baseline, max_regression=0.0) == []
