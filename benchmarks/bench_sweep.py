"""Sweep-executor regression: parallel grids replay identically.

Not a paper figure — this guards the orchestration layer every other
benchmark rides on: a (system × seed) grid run across worker processes
must produce byte-identical per-spec reports to a sequential run, and a
second pass must come entirely from the result cache.

Scale comes from the bench harness configuration
(:class:`repro.bench.BenchConfig`), not from local env parsing.
"""

from repro.bench import BenchConfig
from repro.runner import SweepExecutor, expand_grid


def _grid(config: BenchConfig):
    duration = 600.0 if config.scale == "full" else 90.0
    return expand_grid(["sllm", "slinfer"], seeds=[1, 2], n_models=[4], duration=duration)


def test_parallel_sweep_matches_sequential(run_once, sweep, bench_config):
    specs = _grid(bench_config)
    parallel = run_once(sweep.run, specs)
    assert all(not r.from_cache for r in parallel)
    sequential = SweepExecutor(workers=1).run(specs)
    assert [r.canonical_json() for r in parallel] == [
        r.canonical_json() for r in sequential
    ]

    replayed = sweep.run(specs)
    assert all(r.from_cache for r in replayed)
    assert [r.canonical_json() for r in replayed] == [
        r.canonical_json() for r in parallel
    ]
