"""Fig. 17 — KV-cache scaling overhead."""

from repro.experiments import run_fig17_scaling_cost


def test_fig17_scaling_cost(run_once):
    points = run_once(run_fig17_scaling_cost)
    print("\nFig. 17: KV-cache resize cost (s), half-full cache")
    for point in points:
        print(
            f"  {point.cache_gib:3d} GiB: to 0.5x {point.down_seconds:5.2f}s, "
            f"to 2x {point.up_seconds:5.2f}s"
        )
    by_size = {point.cache_gib: point for point in points}
    # Calibration anchors: 32 GB → 16 GB ≈ 0.3 s; 32 GB → 64 GB ≈ 1.9 s.
    assert abs(by_size[32].down_seconds - 0.3) < 0.06
    assert abs(by_size[32].up_seconds - 1.9) < 0.2
    # Shape: monotone in size, scale-up dominates scale-down.
    ups = [point.up_seconds for point in points]
    assert ups == sorted(ups)
    assert all(point.up_seconds > point.down_seconds for point in points)
