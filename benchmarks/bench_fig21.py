"""Fig. 21 — Azure serverless trace characterization."""


from repro.models import LLAMA2_7B
from repro.workloads import AzureServerlessConfig, synthesize_azure_trace
from repro.workloads.azure_serverless import replica_models

PAPER_TOTALS = {32: 2366, 64: 4684, 128: 9266}


def test_fig21_trace_characterization(run_once):
    def characterize():
        rows = []
        for n_models in (32, 64, 128):
            config = AzureServerlessConfig(n_models=n_models, seed=1)
            workload = synthesize_azure_trace(replica_models(LLAMA2_7B, n_models), config)
            per_minute = workload.per_minute_counts()
            rows.append(
                (
                    n_models,
                    workload.total_requests,
                    workload.aggregated_rpm,
                    max(per_minute),
                    workload.top_share(0.01),
                )
            )
        return rows

    rows = run_once(characterize)
    print("\nFig. 21: synthetic Azure trace characterization (30 min)")
    print("  models | total | agg RPM | peak RPM | top-1% share")
    for n_models, total, rpm, peak, share in rows:
        print(f"  {n_models:6d} | {total:5d} | {rpm:7.1f} | {peak:8d} | {share:.2f}")
    for n_models, total, rpm, peak, share in rows:
        assert abs(total - PAPER_TOTALS[n_models]) / PAPER_TOTALS[n_models] < 0.10
        assert peak > 1.5 * rpm  # bursty
        assert 0.12 <= share <= 0.45  # §III-C: top 1% ≈ 26%
