"""Figs. 28-29 — colocation CPU usage and harvested-core comparison."""

from conftest import grid

from repro.experiments import run_harvested_cores
from repro.hardware import HostCpuModel


def test_fig28_colocation_usage(run_once):
    host = HostCpuModel(host_cores=32)
    rows = run_once(lambda: [(n, host.core_usage(n)) for n in (1, 2, 4, 8)])
    print("\nFig. 28: total core usage during multi-model colocation")
    for n, cores in rows:
        print(f"  {n} colocated: {cores:.2f} cores")
    assert rows[-1][1] < 1.6


def test_fig29_harvested_cores(run_once):
    core_counts = grid((0, 8, 16, 32), (0, 32))
    points = run_once(run_harvested_cores, core_counts=core_counts)
    print("\nFig. 29: SLO-miss rate vs harvested cores per GPU")
    for point in points:
        print(
            f"  {point.cores_per_gpu:2d} cores {point.system:9s} "
            f"miss {100 * point.slo_miss_rate:.0f}%"
        )

    def miss(cores, system):
        return next(
            p.slo_miss_rate
            for p in points
            if p.cores_per_gpu == cores and p.system == system
        )

    # SLINFER achieves the lowest miss rate at every core budget (§IX-I3).
    for cores in core_counts:
        assert miss(cores, "slinfer") <= miss(cores, "neo+") + 0.02
        assert miss(cores, "slinfer") <= miss(cores, "sllm+c+s") + 0.02
    # More harvested cores help every system.
    top = max(core_counts)
    for system in ("neo+", "slinfer"):
        assert miss(top, system) <= miss(0, system) + 0.02
