"""Fig. 24 — CPU scalability: adding CPU vs GPU nodes."""

from conftest import grid

from repro.experiments import run_cpu_scalability


def test_fig24_cpu_scalability(run_once):
    max_added = grid(8, 4)
    points = run_once(run_cpu_scalability, max_added=max_added)
    print("\nFig. 24: SLO-met requests vs added nodes (base: 2 GPUs)")
    for point in points:
        print(
            f"  +{point.added_nodes} {point.kind.upper()} nodes: "
            f"{point.slo_met}/{point.total}"
        )
    cpu_points = [p for p in points if p.kind == "cpu"]
    gpu_points = [p for p in points if p.kind == "gpu"]
    # Adding CPU nodes increases capacity...
    assert cpu_points[-1].slo_met > cpu_points[0].slo_met
    # ...but less efficiently than GPU nodes (3-4 CPUs ≈ 1 GPU).
    gain_cpu = cpu_points[-1].slo_met - cpu_points[0].slo_met
    gain_gpu = gpu_points[-1].slo_met - gpu_points[0].slo_met
    assert gain_gpu >= gain_cpu
