"""Fig. 25 — GPU efficiency: memory utilization and batch sizes."""

from repro.experiments import run_gpu_efficiency


def test_fig25_gpu_efficiency(run_once):
    results = run_once(run_gpu_efficiency)
    print("\nFig. 25: GPU memory utilization / batch size (3B:7B:13B = 2:2:2)")
    for result in results:
        mem = result.memory_cdf
        med = mem.median if not mem.empty else float("nan")
        print(
            f"  {result.system:9s} mem-util median {med:.2f} "
            f"mean-batch {result.mean_batch:.1f}"
        )
    by_system = {result.system: result for result in results}
    slinfer = by_system["slinfer"]
    sllm = by_system["sllm"]
    # SLINFER packs GPU memory far tighter than exclusive allocation
    # (paper: "near-optimal utilization close to 1" vs a three-tier
    # pattern mostly below 0.5).
    assert slinfer.memory_cdf.median > sllm.memory_cdf.median + 0.30
    assert sllm.memory_cdf.median < 0.5
    # Batching: the paper reports +74% average batch vs sllm.  In this
    # substrate sllm's heavy queue-dropping concentrates its surviving
    # burst traffic into large batches, so we assert only that SLINFER's
    # batching stays comparable while it serves far more requests — see
    # EXPERIMENTS.md for the discussion of this deviation.
    assert slinfer.mean_batch > 0.6 * sllm.mean_batch
    assert slinfer.report.slo_met_count > sllm.report.slo_met_count
    # sllm+c+s suffers lower peak batch sizes from static partitioning.
    cs = by_system["sllm+c+s"]
    if not cs.batch_cdf.empty and not slinfer.batch_cdf.empty:
        assert cs.batch_cdf.percentile(99) <= slinfer.batch_cdf.percentile(99) + 2
