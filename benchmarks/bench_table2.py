"""Table II — aggregated concurrency limits vs resource fractions."""

from collections import defaultdict

from repro.experiments import run_table2


def test_table2(run_once):
    cells = run_once(run_table2)
    by_scenario = defaultdict(dict)
    for cell in cells:
        by_scenario[cell.scenario][cell.fraction_label] = cell
    print("\nTable II: per-instance (aggregate) concurrency limits")
    print("scenario  |   1/4    |   1/3    |   1/2    |    1")
    for scenario, cells_by_fraction in by_scenario.items():
        parts = []
        for label in ("1/4", "1/3", "1/2", "1"):
            cell = cells_by_fraction[label]
            text = "-" if cell.per_instance_limit == 0 else (
                f"{cell.per_instance_limit}({cell.aggregate_limit})"
            )
            parts.append(f"{text:>8s}")
        print(f"{scenario:9s} | " + " | ".join(parts))

    # Shape checks against the published cells.
    assert abs(by_scenario["C-7B-2K"]["1"].per_instance_limit - 27) <= 1
    assert abs(by_scenario["C-7B-4K"]["1"].per_instance_limit - 15) <= 1
    assert by_scenario["C-7B-2K"]["1/4"].per_instance_limit == 0  # the "-" cell
    assert abs(by_scenario["G-7B-2K"]["1"].per_instance_limit - 66) <= 2
    assert abs(by_scenario["G-13B-4K"]["1"].per_instance_limit - 16) <= 2
    # §IV-C: three 1/3 instances reach about half the full aggregate.
    full = by_scenario["G-7B-2K"]["1"].aggregate_limit
    thirds = by_scenario["G-7B-2K"]["1/3"].aggregate_limit
    assert thirds < 0.7 * full
