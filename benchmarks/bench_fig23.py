"""Fig. 23 — ablation: disabling each SLINFER component."""

from repro.experiments import run_ablation


def test_fig23_ablation(run_once):
    results = run_once(run_ablation)
    print("\nFig. 23: ablation at 64 7B models")
    for label, report in results.items():
        print(
            f"  {label:18s} SLO {100 * report.slo_rate:5.1f}%  "
            f"nodes cpu/gpu {report.avg_nodes_used_cpu:.1f}/{report.avg_nodes_used_gpu:.1f}"
        )
    full = results["slinfer-full"]
    # Disabling any component costs GPU resources (Fig. 23).
    assert results["w/o cpu"].avg_nodes_used_gpu > full.avg_nodes_used_gpu
    assert results["w/o sharing"].avg_nodes_used_gpu >= full.avg_nodes_used_gpu
    # "w/o CPU" shifts all work to GPUs.
    assert results["w/o cpu"].avg_nodes_used_cpu == 0.0
    # Disabling sharing hurts SLO compliance the most ("drops to 89%").
    assert results["w/o sharing"].slo_rate < full.slo_rate
    assert full.slo_rate > 0.9
