"""Fig. 31 — KV-cache scaling watermark sensitivity."""

from conftest import grid

from repro.experiments import run_watermark_sweep


def test_fig31_watermark(run_once):
    watermarks = grid((0.0, 0.10, 0.25, 0.50, 1.00), (0.0, 0.25, 1.00))
    points = run_once(run_watermark_sweep, watermarks=watermarks)
    print("\nFig. 31: KV utilization and scaling overhead vs watermark")
    for point in points:
        print(
            f"  w={point.watermark:4.0%} kv-util {point.kv_utilization:.2f} "
            f"scaling-overhead {100 * point.scaling_overhead:.1f}% "
            f"migrations {100 * point.migration_rate:.1f}%"
        )
    by_watermark = {point.watermark: point for point in points}
    # §IX-I5: disabling the watermark causes far more time resizing than a
    # low watermark; 25% already makes the overhead minimal.
    assert by_watermark[0.0].scaling_overhead > by_watermark[0.25].scaling_overhead
    # Raising the watermark further lowers KV utilization (memory waste).
    assert by_watermark[1.0].kv_utilization < by_watermark[0.0].kv_utilization
    # Migration (underestimation) rate stays tiny with the watermark on.
    assert by_watermark[0.25].migration_rate < 0.02
