"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper and prints
the corresponding rows/series (absolute numbers come from the calibrated
simulator; the assertions check the paper's *shape*: who wins, by roughly
what factor, where crossovers fall).

Scale control: ``REPRO_SCALE=full`` replays the paper's 30-minute traces;
the default ``quick`` replays rate-preserving 10-minute slices.
"""

from __future__ import annotations

import os

import pytest


def at_full_scale() -> bool:
    return os.environ.get("REPRO_SCALE", "quick").lower() == "full"


def grid(full, quick):
    """Pick a parameter grid depending on the configured scale."""
    return full if at_full_scale() else quick


@pytest.fixture
def run_once(benchmark):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
