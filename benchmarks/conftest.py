"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper and prints
the corresponding rows/series (absolute numbers come from the calibrated
simulator; the assertions check the paper's *shape*: who wins, by roughly
what factor, where crossovers fall).

Scale and worker settings come from the bench harness's single
configuration seam (:class:`repro.bench.BenchConfig`), which resolves
``REPRO_SCALE`` / ``REPRO_WORKERS`` through the runner exactly once:
``REPRO_SCALE=full`` replays the paper's 30-minute traces; the default
``quick`` replays rate-preserving 10-minute slices.  ``REPRO_WORKERS``
sets the worker-pool size for the ``sweep`` fixture.
"""

from __future__ import annotations

import pytest

from repro.bench import BenchConfig
from repro.runner import ResultCache, SweepExecutor


@pytest.fixture(scope="session")
def bench_config() -> BenchConfig:
    """The environment-resolved bench configuration for this session."""
    return BenchConfig.from_env()


def at_full_scale() -> bool:
    return BenchConfig.from_env().scale == "full"


def grid(full, quick):
    """Pick a parameter grid depending on the configured scale."""
    return full if at_full_scale() else quick


@pytest.fixture
def run_once(benchmark):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run


@pytest.fixture
def sweep(tmp_path, bench_config):
    """A SweepExecutor with a per-test result cache.

    Benchmarks that fan a RunSpec grid out (instead of calling an
    experiment runner directly) use this to pick up ``REPRO_WORKERS``
    parallelism for free:  ``results = sweep.run(expand_grid(...))``.
    """
    return SweepExecutor(
        workers=bench_config.workers, cache=ResultCache(tmp_path / "repro-cache")
    )
