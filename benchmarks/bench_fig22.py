"""Fig. 22 — end-to-end comparison across model sizes and counts.

The headline result: with 128 models, SLINFER improves SLO-met requests by
~86-154 % over sllm and ~47-62 % over sllm+c, while using fewer nodes with
higher per-node decode speed.  We assert the *shape* (ordering and broad
factors), not the absolute numbers.
"""

import pytest
from conftest import grid

from repro.experiments import run_fig22


def _print_cells(cells):
    print()
    for cell in cells:
        print(" ", cell.summary)


def _slo_met(cells, system, n_models):
    return next(
        c.report.slo_met_count
        for c in cells
        if c.system == system and c.n_models == n_models
    )


@pytest.mark.parametrize("size", ["3B", "7B", "13B"])
def test_fig22_end_to_end(run_once, size):
    counts = grid((32, 64, 128), (32, 128))
    cells = run_once(run_fig22, size=size, counts=counts)
    _print_cells(cells)

    top = max(counts)
    sllm = _slo_met(cells, "sllm", top)
    sllm_c = _slo_met(cells, "sllm+c", top)
    sllm_cs = _slo_met(cells, "sllm+c+s", top)
    slinfer = _slo_met(cells, "slinfer", top)

    # Ordering at the highest load: SLINFER beats every baseline, and CPUs
    # add capacity over GPU-only sllm.  (sllm+c+s may fall *below* sllm+c
    # for large models — the paper's own "negative optimization effects"
    # of static partitioning, §IX-B/§IX-E — so no ordering is asserted
    # between the two.)
    assert slinfer > max(sllm, sllm_c, sllm_cs)
    assert sllm_c >= sllm
    # Broad factors: ≥35% over sllm+c (paper: 47-62%), ≥10% over sllm+c+s
    # (paper: 18-70%), ≥50% over sllm (paper: 86-154%).
    assert slinfer >= 1.35 * sllm_c
    assert slinfer >= 1.10 * sllm_cs
    assert slinfer >= 1.50 * sllm

    # At low load SLINFER serves ~everything with fewer GPUs than sllm.
    low = min(counts)
    slinfer_low = next(c for c in cells if c.system == "slinfer" and c.n_models == low)
    sllm_low = next(c for c in cells if c.system == "sllm" and c.n_models == low)
    assert slinfer_low.report.slo_rate > 0.95
    assert slinfer_low.report.avg_nodes_used_gpu < sllm_low.report.avg_nodes_used_gpu
