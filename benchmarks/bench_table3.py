"""Table III — prefill-decode disaggregation hurts in this regime."""

from conftest import grid

from repro.experiments import run_pd_table


def test_table3_pd_disaggregation(run_once):
    counts = grid((32, 64, 128), (32, 128))
    rows = run_once(run_pd_table, counts=counts)
    print("\nTable III: aggregated / disaggregated PD")
    print("    system      x#   GPU agg/dis    SLO agg/dis")
    for row in rows:
        print("   ", row.summary)
    for row in rows:
        # PD never improves SLO compliance and tends to cost resources.
        assert row.disaggregated.slo_rate <= row.aggregated.slo_rate + 0.02
    # At the highest load the SLO penalty is pronounced for both systems.
    top = max(counts)
    for row in rows:
        if row.n_models == top:
            assert row.disaggregated.slo_rate < row.aggregated.slo_rate
