"""Figs. 2-3 — model-size popularity and LMSYS invocation frequencies."""

from repro.workloads import huggingface_size_popularity, lmsys_request_rates


def test_fig2_hf_popularity(run_once):
    stats = run_once(huggingface_size_popularity)
    print("\nFig. 2: HuggingFace size-popularity CDF anchors")
    for threshold in (1, 3, 8, 13, 34, 70):
        print(
            f"  <= {threshold:3d}B params: downloads {stats.cdf_by(stats.downloads, threshold):.2f} "
            f"likes {stats.cdf_by(stats.likes, threshold):.2f}"
        )
    assert abs(stats.downloads_under_8b - 0.87) < 0.05
    assert abs(stats.likes_under_8b - 0.60) < 0.05


def test_fig3_lmsys_rates(run_once):
    rates = run_once(lmsys_request_rates)
    print("\nFig. 3: per-model requests/hour (sorted)")
    print("  " + " ".join(f"{r:.1f}" for r in rates))
    assert 0.4 <= (rates < 5.0).mean() <= 0.72  # "56% receive <5 req/h"
    assert rates[0] > 20
