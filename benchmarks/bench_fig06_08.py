"""Figs. 6-8 — TTFT/TPOT characterization across hardware and models."""

from repro.experiments import run_fig6_ttft_curves, run_fig7_8_tpot_curves
from repro.models import LLAMA2_13B


def test_fig6_ttft_curves(run_once):
    curves = run_once(run_fig6_ttft_curves)
    print("\nFig. 6: TTFT (s) vs input length")
    for curve in curves:
        series = " ".join(f"{v:6.2f}" for v in curve.ttft_s)
        print(f"  {curve.label:6s} {series}")
    by_label = {curve.label: curve for curve in curves}
    # CPUs meet the SLO for 7B/13B at short inputs; 34B never does.
    c7 = by_label["C-7B"]
    assert all(t <= s for t, s, l in zip(c7.ttft_s, c7.slo_s, c7.lengths) if l <= 4096)
    c34 = by_label["C-34B"]
    assert any(t > s for t, s, l in zip(c34.ttft_s, c34.slo_s, c34.lengths) if l >= 256)
    # GPUs meet the SLO everywhere plotted.
    for label in ("G-7B", "G-13B", "G-34B"):
        curve = by_label[label]
        assert all(t <= s for t, s in zip(curve.ttft_s, curve.slo_s))


def test_fig7_tpot_7b(run_once):
    curves = run_once(run_fig7_8_tpot_curves)
    print("\nFig. 7: Llama-2-7B TPOT (ms) vs batch size")
    for curve in curves:
        series = " ".join(f"{1000 * v:5.0f}" for v in curve.tpot_s)
        print(f"  {curve.label:6s} {series}")
    by_label = {curve.label: curve for curve in curves}
    # CPU meets the 250 ms TPOT SLO with moderate batching at 1K tokens.
    c1k = by_label["C-1K"]
    idx16 = c1k.batches.index(16)
    assert c1k.tpot_s[idx16] <= 0.25
    # Batching is sub-linear: 4-batch is ~14% over 1-batch (§IV-A2).
    ratio = c1k.tpot_s[c1k.batches.index(4)] / c1k.tpot_s[0]
    assert 1.05 < ratio < 1.25


def test_fig8_tpot_13b(run_once):
    curves = run_once(run_fig7_8_tpot_curves, model=LLAMA2_13B)
    by_label = {curve.label: curve for curve in curves}
    print("\nFig. 8: Llama-2-13B TPOT (ms) vs batch size")
    for curve in curves:
        series = " ".join(f"{1000 * v:5.0f}" for v in curve.tpot_s)
        print(f"  {curve.label:6s} {series}")
    # 13B at 32-batch: 2K-token contexts clearly violate the SLO while 512
    # grazes it (§IV-A2; our calibrated law puts 512/32 at ~259 ms, within
    # a few percent of the 250 ms boundary the figure shows it touching).
    c512, c2k = by_label["C-512"], by_label["C-2K"]
    idx32 = c512.batches.index(32)
    assert c512.tpot_s[idx32] <= 0.27
    assert c2k.tpot_s[idx32] > 0.30
    assert 1.6 < c2k.tpot_s[idx32] / c512.tpot_s[idx32] < 2.4
