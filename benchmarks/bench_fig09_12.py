"""Figs. 9 & 12 — memory footprint and concurrency under real workloads."""

from conftest import grid

from repro.experiments import run_fig9_memory_footprint
from repro.models import LLAMA2_13B, LLAMA2_7B

GB = 1e9


def test_fig9_fig12_footprint_and_concurrency(run_once):
    percentiles = grid((99.0, 95.0, 90.0, 80.0, 50.0), (99.0, 90.0, 50.0))

    def both_models():
        return {
            "7B": run_fig9_memory_footprint(model=LLAMA2_7B, percentiles=percentiles),
            "13B": run_fig9_memory_footprint(model=LLAMA2_13B, percentiles=percentiles),
        }

    profiles = run_once(both_models)
    print("\nFig. 9: memory footprint (GB) | Fig. 12: concurrency")
    for size, rows in profiles.items():
        for profile in rows:
            conc = profile.concurrency_cdf
            peak_conc = conc.percentile(100) if not conc.empty else 0
            print(
                f"  {profile.label:10s} min={profile.min_footprint / GB:5.1f} "
                f"median={profile.footprint_cdf.median / GB:6.1f} "
                f"peak={profile.peak_footprint / GB:6.1f} | peak-conc={peak_conc:4.0f}"
            )
    # Shape: the weights floor matches §IV-B (≈14 GB / 26 GB)...
    assert abs(profiles["7B"][0].min_footprint / GB - 14) < 1.5
    assert abs(profiles["13B"][0].min_footprint / GB - 26) < 2.5
    # ...the P99 function bursts far above the median function (the gap
    # widens further at REPRO_SCALE=full where full-length bursts appear)...
    p99 = profiles["7B"][0]
    p50 = profiles["7B"][-1]
    assert p99.peak_footprint > 1.5 * p50.peak_footprint
    # ...yet most of the time even the P99 footprint stays low (§IV-B:
    # "more than 50% of the time, memory footprint remains below 17 GB").
    assert p99.footprint_cdf.median < 30 * GB
