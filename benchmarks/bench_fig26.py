"""Fig. 26 — mixed deployment with various size popularities (incl. 34B TP-2)."""

from conftest import grid

from repro.experiments import run_mixed_deployment
from repro.experiments.heterogeneity import POPULARITY_RATIOS


def test_fig26_mixed_deployment(run_once):
    ratios = grid(POPULARITY_RATIOS, ((4, 1, 1, 1), (1, 1, 4, 1), (0, 0, 0, 1)))
    results = run_once(run_mixed_deployment, ratios=ratios)
    print("\nFig. 26: GPUs used under mixed model-size popularity (4 CPU + 6 GPU)")
    for result in results:
        print(
            f"  {result.ratio:9s} {result.system:9s} "
            f"GPUs {result.report.avg_nodes_used_gpu:.1f} "
            f"SLO {100 * result.report.slo_rate:.0f}%"
        )

    def gpus(ratio, system):
        label = ":".join(str(x) for x in ratio)
        return next(
            r.report.avg_nodes_used_gpu
            for r in results
            if r.ratio == label and r.system == system
        )

    small_heavy = ratios[0]
    large_heavy = next(r for r in ratios if r[2] >= 4)
    # SLINFER uses no more GPUs than the baselines in every mix.
    for ratio in ratios:
        assert gpus(ratio, "slinfer") <= gpus(ratio, "sllm+c") + 0.2
        assert gpus(ratio, "slinfer") <= gpus(ratio, "sllm+c+s") + 0.2
    # Density advantage shrinks when large models dominate (§IX-E).
    small_saving = gpus(small_heavy, "sllm+c") - gpus(small_heavy, "slinfer")
    large_saving = gpus(large_heavy, "sllm+c") - gpus(large_heavy, "slinfer")
    assert small_saving >= large_saving - 0.3
