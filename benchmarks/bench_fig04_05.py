"""Figs. 4-5 — ServerlessLLM's capacity collapse and memory over-provisioning."""

from conftest import grid

from repro.experiments import run_fig4_sllm_capacity, run_fig5_memory_utilization


def test_fig4_sllm_capacity(run_once):
    counts = grid((16, 32, 64, 96, 128), (16, 64, 128))
    points = run_once(run_fig4_sllm_capacity, counts=counts)
    print("\nFig. 4: sllm SLO rate vs number of models (4 GPUs)")
    for point in points:
        print(f"  {point.n_models:4d} models: {point.slo_rate:.2f}")
    # Shape: performs well at small scale, drops sharply as models grow.
    assert points[0].slo_rate > 0.8
    assert points[-1].slo_rate < points[0].slo_rate - 0.25


def test_fig5_memory_utilization(run_once):
    cdf = run_once(run_fig5_memory_utilization)
    print("\nFig. 5: GPU memory utilization CDF under sllm, 128 models")
    for q in (10, 25, 50, 75, 90):
        print(f"  P{q}: {cdf.percentile(q):.2f}")
    # §III-C: each instance uses ~23% of its GPU on average.
    assert cdf.mean < 0.45
    assert cdf.median < 0.35
