"""Fig. 30 — keep-alive threshold sensitivity."""

from conftest import grid

from repro.experiments import run_keepalive_sweep


def test_fig30_keepalive(run_once):
    thresholds = grid((0.0, 1.0, 2.0, 4.0, 8.0), (0.0, 1.0, 8.0))
    points = run_once(run_keepalive_sweep, thresholds=thresholds)
    print("\nFig. 30: GPUs used and P95 TTFT vs keep-alive threshold")
    for point in points:
        print(
            f"  keepalive={point.threshold:3.1f}s {point.system:9s} "
            f"GPUs {point.gpus_used:.2f} P95-TTFT {point.p95_ttft:.2f}s"
        )

    def of(threshold, system):
        return next(
            p for p in points if p.threshold == threshold and p.system == system
        )

    # Longer keep-alive holds resources longer...
    for system in ("slinfer", "sllm+c+s"):
        low = of(min(thresholds), system)
        high = of(max(thresholds), system)
        assert high.gpus_used >= low.gpus_used - 0.1
    # ...and §IX-I4: extending the threshold does NOT improve (and can
    # worsen) tail TTFT, because cold starts are already cheap.
    slinfer_high = of(max(thresholds), "slinfer")
    slinfer_ref = of(1.0, "slinfer") if 1.0 in thresholds else of(min(thresholds), "slinfer")
    assert slinfer_high.p95_ttft >= slinfer_ref.p95_ttft - 0.25
