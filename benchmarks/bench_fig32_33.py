"""Figs. 32-33 — node-count scaling and scheduling overhead."""

from conftest import grid

from repro.experiments import run_node_scaling, run_scheduling_overhead


def test_fig32_node_scaling(run_once):
    node_pairs = grid((1, 2, 3, 4), (1, 4))
    points = run_once(run_node_scaling, node_pairs=node_pairs)
    print("\nFig. 32: SLO-met requests vs cluster size")
    for point in points:
        print(f"  {point.total_nodes} nodes {point.system:9s} {point.slo_met}/{point.total}")

    def met(nodes, system):
        return next(
            p.slo_met for p in points if p.total_nodes == nodes and p.system == system
        )

    for pairs in node_pairs:
        # SLINFER beats sllm+c+s at every cluster size.
        assert met(2 * pairs, "slinfer") >= met(2 * pairs, "sllm+c+s")
    # More nodes → more SLO-met requests (with diminishing returns).
    small, large = 2 * min(node_pairs), 2 * max(node_pairs)
    assert met(large, "slinfer") > met(small, "slinfer")


def test_fig33_scheduling_overhead(run_once):
    node_pairs = grid((1, 2, 3, 4), (1, 4))
    points = run_once(run_scheduling_overhead, node_pairs=node_pairs)
    print("\nFig. 33: measured scheduling overhead of this implementation")
    for point in points:
        print(
            f"  {point.total_nodes} nodes: shadow-validation "
            f"{1e3 * point.shadow_validation.mean_seconds:.2f} ms "
            f"(n={point.shadow_validation.count}), token-schedule "
            f"{1e6 * point.token_schedule.mean_seconds:.0f} us "
            f"(n={point.token_schedule.count})"
        )
    # Shape (Fig. 33): both decision types stay sub-10ms; token-level
    # scheduling is far cheaper than shadow validation and roughly flat
    # in cluster size.
    for point in points:
        assert point.shadow_validation.mean_seconds < 0.010
        assert point.token_schedule.mean_seconds < 0.001
