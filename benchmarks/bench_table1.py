"""Table I — Llama-2-7B on 3rd- vs 4th-gen Xeon CPUs."""

from repro.experiments import run_table1


def test_table1(run_once):
    rows = run_once(run_table1)
    print("\nTable I: Llama-2-7B TTFT/TPOT (ms) per CPU generation")
    header = "CPU              | TTFT 256 | TTFT 1K | TTFT 4K | 1bs-1K | 32bs-1K | 1bs-4K | 32bs-4K"
    print(header)
    for row in rows:
        print(
            f"{row.cpu:16s} | {row.ttft_ms[256]:8.0f} | {row.ttft_ms[1024]:7.0f} "
            f"| {row.ttft_ms[4096]:7.0f} | {row.tpot_ms[(1, 1024)]:6.0f} "
            f"| {row.tpot_ms[(32, 1024)]:7.0f} | {row.tpot_ms[(1, 4096)]:6.0f} "
            f"| {row.tpot_ms[(32, 4096)]:7.0f}"
        )
    gen3, gen4 = rows
    # Shape: 6.7-7.3× prefill speedup, 1.4-1.7× decode speedup (Table I).
    for length in (256, 1024, 4096):
        assert 6.5 <= gen3.ttft_ms[length] / gen4.ttft_ms[length] <= 7.5
    for key in gen4.tpot_ms:
        assert 1.3 <= gen3.tpot_ms[key] / gen4.tpot_ms[key] <= 1.8
