"""Figs. 10-11 & 28 — host-CPU usage of GPU engines and stress tolerance."""

from repro.hardware import HostCpuModel
from repro.models import LLAMA2_7B
from repro.perf.laws import LatencyLaw
from repro.hardware import A100_80GB


def test_fig10_throughput_vs_core_use(run_once):
    def characterize():
        law = LatencyLaw(A100_80GB, LLAMA2_7B)
        host = HostCpuModel()
        rows = []
        for batch in (1, 2, 4, 8, 16, 32, 64):
            tpot = law.decode_seconds(batch, 1024)
            rows.append((batch, batch / tpot, host.core_usage(1)))
        return rows

    rows = run_once(characterize)
    print("\nFig. 10: decode throughput (tok/s) and host-core use vs batch")
    for batch, throughput, cores in rows:
        print(f"  bs={batch:3d}: {throughput:7.0f} tok/s, {cores:.2f} cores")
    # Throughput grows with batch; core use never exceeds one core.
    throughputs = [r[1] for r in rows]
    assert throughputs == sorted(throughputs)
    assert throughputs[-1] > 900  # ~1k tok/s at bs 64 (Fig. 10)
    assert all(r[2] <= 1.1 for r in rows)


def test_fig11_stress_slowdown(run_once):
    host = HostCpuModel(host_cores=32)
    rows = run_once(lambda: [(n, host.stress_slowdown(n)) for n in (0, 4, 8, 16, 32, 64)])
    print("\nFig. 11: TPOT slowdown under background CPU stress")
    for procs, slowdown in rows:
        print(f"  {procs:3d} stress procs: {100 * (slowdown - 1):.1f}% slower")
    # §IV-A1: only ~4% loss at 64 stress processes on 32 cores.
    assert rows[-1][1] <= 1.05


def test_fig28_colocation_core_usage(run_once):
    host = HostCpuModel(host_cores=32)
    rows = run_once(lambda: [(n, host.core_usage(n)) for n in (1, 2, 4, 8)])
    print("\nFig. 28: total host-core usage vs colocated instances")
    for instances, cores in rows:
        print(f"  {instances} instances: {cores:.2f} cores")
    # §IX-I3: eight instances only "slightly exceed one core".
    assert 1.0 < rows[-1][1] < 1.6
