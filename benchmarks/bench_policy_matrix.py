"""Policy-matrix sweep: mechanism ablations as a 2×2 cross-product.

Not a paper figure — this guards the policy redesign's headline
workflow: sweeping SLINFER's placement against the sllm+c+s slot
placement while crossing the reclaim policy (keep-alive vs never), all
from one `expand_grid` call.  Every combination must produce a distinct
fingerprint, a self-describing system label, and deterministic reports
through the sweep executor; the reclaim axis must move resource usage
in the expected direction (never-reclaim keeps nodes resident).
"""

from conftest import grid

from repro.runner import expand_grid, expand_policy_grid


def _matrix_specs():
    duration = grid(600.0, 90.0)
    return expand_grid(
        ["slinfer"],
        n_models=[4],
        clusters=["small"],
        duration=duration,
        policies={
            "placement": ["slinfer", "sllm+c+s"],
            "reclaim": ["keepalive", "never"],
        },
    )


def test_policy_matrix_2x2(run_once, sweep):
    specs = _matrix_specs()
    assert len(specs) == 4
    assert len({spec.fingerprint() for spec in specs}) == 4

    results = run_once(sweep.run, specs)
    by_label = {result.report.system: result.report for result in results}
    assert set(by_label) == {
        "slinfer[placement=slinfer,reclaim=keepalive]",
        "slinfer[placement=slinfer,reclaim=never]",
        "slinfer[placement=sllm+c+s,reclaim=keepalive]",
        "slinfer[placement=sllm+c+s,reclaim=never]",
    }

    print("\nPolicy matrix: placement × reclaim (azure, 4 models)")
    for label, report in sorted(by_label.items()):
        print(
            f"  {label:48s} slo={100 * report.slo_rate:5.1f}% "
            f"nodes(cpu/gpu)={report.avg_nodes_used_cpu:.1f}/{report.avg_nodes_used_gpu:.1f}"
        )

    # Never-reclaim keeps instances resident: node-time never shrinks.
    for placement in ("slinfer", "sllm+c+s"):
        kept = by_label[f"slinfer[placement={placement},reclaim=never]"]
        stock = by_label[f"slinfer[placement={placement},reclaim=keepalive]"]
        kept_busy = kept.node_seconds_cpu + kept.node_seconds_gpu
        stock_busy = stock.node_seconds_cpu + stock.node_seconds_gpu
        assert kept_busy >= stock_busy

    # A second pass replays the whole matrix from the result cache.
    replayed = sweep.run(specs)
    assert all(result.from_cache for result in replayed)
    assert [r.canonical_json() for r in replayed] == [r.canonical_json() for r in results]


def test_policy_grid_expansion_shape():
    combos = expand_policy_grid({"placement": ["a", "b"], "reclaim": ["x", "y"]})
    assert combos == [
        (("placement", "a"), ("reclaim", "x")),
        (("placement", "a"), ("reclaim", "y")),
        (("placement", "b"), ("reclaim", "x")),
        (("placement", "b"), ("reclaim", "y")),
    ]
