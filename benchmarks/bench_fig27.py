"""Fig. 27 — BurstGPT trace at different load levels."""

from conftest import grid

from repro.experiments import run_burstgpt_loads


def test_fig27_burstgpt(run_once):
    rps_levels = grid((0.5, 1.0, 2.0, 4.0), (0.5, 4.0))
    points = run_once(run_burstgpt_loads, rps_levels=rps_levels)
    print("\nFig. 27: BurstGPT resource usage by load level")
    for point in points:
        print(
            f"  {point.rps:3.1f} RPS {point.system:9s} "
            f"nodes cpu/gpu {point.report.avg_nodes_used_cpu:.1f}/"
            f"{point.report.avg_nodes_used_gpu:.1f} "
            f"SLO {100 * point.report.slo_rate:.0f}%"
        )

    def of(rps, system):
        return next(p.report for p in points if p.rps == rps and p.system == system)

    for rps in rps_levels:
        slinfer = of(rps, "slinfer")
        baseline = of(rps, "sllm+c+s")
        total_slinfer = slinfer.avg_nodes_used_cpu + slinfer.avg_nodes_used_gpu
        total_baseline = baseline.avg_nodes_used_cpu + baseline.avg_nodes_used_gpu
        # SLINFER consistently consumes fewer node resources (§IX-I2)...
        assert total_slinfer <= total_baseline + 0.2
        # ...while keeping SLO violations lower at high load.
        if rps >= 4.0:
            assert slinfer.slo_miss_rate <= baseline.slo_miss_rate
