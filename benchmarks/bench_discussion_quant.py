"""§X — INT4 quantization restores sharing for 22B models."""

from repro.experiments import run_quantization_comparison


def test_quantization_sharing(run_once):
    results = run_once(run_quantization_comparison)
    print("\n§X: 32 Codestral-22B deployments, fp16 vs INT4 (4 GPUs)")
    for result in results:
        print(
            f"  {result.quantization:5s} GPUs {result.gpus_used:.1f} "
            f"SLO {100 * result.slo_rate:.0f}%"
        )
    fp16 = next(r for r in results if r.quantization == "fp16")
    int4 = next(r for r in results if r.quantization == "int4")
    # §X: INT4 reduced GPU usage from 3.8 to 2.6 — we assert the direction
    # and a meaningful saving.
    assert int4.gpus_used < fp16.gpus_used - 0.3
    assert int4.slo_rate >= fp16.slo_rate - 0.02
