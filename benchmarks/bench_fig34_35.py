"""Figs. 34-35 — dataset characterization and per-dataset evaluation."""

import numpy as np
from conftest import grid

from repro.experiments import run_dataset_sweep
from repro.sim import make_rng
from repro.workloads import DATASETS


def test_fig34_dataset_characterization(run_once):
    def characterize():
        rng = make_rng(0, "fig34")
        rows = []
        for name, dist in DATASETS.items():
            inputs = dist.sample_input_lens(rng, 4000)
            outputs = dist.sample_output_lens(rng, 4000)
            rows.append((name, np.median(inputs), inputs.max(), np.median(outputs)))
        return rows

    rows = run_once(characterize)
    print("\nFig. 34: dataset length characterization")
    for name, in_median, in_max, out_median in rows:
        print(
            f"  {name:20s} input median {in_median:6.0f} max {in_max:6.0f} "
            f"output median {out_median:5.0f}"
        )
    stats = {name: (im, mx, om) for name, im, mx, om in rows}
    assert stats["longbench"][1] > 16000  # up to 32k inputs
    assert stats["sharegpt"][2] > stats["azure-code"][2]  # longer outputs
    assert stats["humaneval"][0] < stats["azure-conversation"][0]


def test_fig35_dataset_sweep(run_once):
    names = grid(
        ("humaneval", "azure-code", "azure-conversation", "longbench", "sharegpt"),
        ("azure-conversation", "longbench", "sharegpt"),
    )
    results = run_once(run_dataset_sweep, dataset_names=names)
    print("\nFig. 35: per-dataset evaluation, 64 8B models")
    for result in results:
        print(
            f"  {result.dataset:20s} {result.system:9s} "
            f"nodes cpu/gpu {result.report.avg_nodes_used_cpu:.1f}/"
            f"{result.report.avg_nodes_used_gpu:.1f} "
            f"SLO {100 * result.report.slo_rate:.0f}% "
            f"decode cpu/gpu {result.report.decode_speed_cpu:.0f}/"
            f"{result.report.decode_speed_gpu:.0f}"
        )

    def of(dataset, system):
        return next(
            r.report for r in results if r.dataset == dataset and r.system == system
        )

    for dataset in names:
        slinfer = of(dataset, "slinfer")
        baseline = of(dataset, "sllm+c+s")
        total_s = slinfer.avg_nodes_used_cpu + slinfer.avg_nodes_used_gpu
        total_b = baseline.avg_nodes_used_cpu + baseline.avg_nodes_used_gpu
        # SLINFER consistently consumes fewer resources (§IX-I1)...
        assert total_s <= total_b + 0.3
        # ...with at least comparable SLO compliance.
        assert slinfer.slo_rate >= baseline.slo_rate - 0.02
    # LongBench: CPUs can't meet the long-input TTFT SLO, so SLINFER
    # places little work there compared to conversation traffic.
    long_cpu = of("longbench", "slinfer").avg_nodes_used_cpu
    conv_cpu = of("azure-conversation", "slinfer").avg_nodes_used_cpu
    assert long_cpu <= conv_cpu + 0.2
